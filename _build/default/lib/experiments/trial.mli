(** Shared Monte-Carlo harness for the evaluation experiments.

    Mirrors the paper's ns-3 methodology (Sec. 4.2): for each data
    point, repeatedly draw a publisher plus n−1 distinct subscribers
    uniformly at random, compute the shortest-path delivery tree, build
    the d candidate zFilters, select one by the configured strategy,
    deliver through the simulated fabric, and aggregate links used,
    forwarding efficiency (Eq. 3) and false-positive rate (Eq. 2). *)

type selection = Standard | Fpa | Fpr

type config = {
  params : Lipsin_bloom.Lit.params;
  selection : selection;
  trials : int;
  seed : int;          (** Drives both LIT assignment and trial draws. *)
  fill_limit : float;
}

val default_config : config
(** Paper defaults: m = 248, d = 8, k = 5, fpa selection, 500 trials,
    fill limit 0.7. *)

type point = {
  users : int;
  links_mean : float;       (** Mean tree size (links). *)
  links_p95 : float;
  efficiency_mean : float;  (** Percent. *)
  efficiency_p95 : float;   (** 5th percentile of efficiency — the
                                "95th" badness column of Table 2. *)
  fpr_mean : float;         (** Percent. *)
  fpr_p95 : float;
  unicast_efficiency : float;  (** Same trials, multiple unicast (%). *)
  over_limit : int;  (** Trials where no candidate passed the limit. *)
  efficiency_ci95 : float;  (** Half-width of the 95% CI of the mean. *)
  fpr_ci95 : float;
}

val run : config -> Lipsin_topology.Graph.t -> users:int -> point
(** One data point: [users] − 1 subscribers per trial. *)

val run_curve : config -> Lipsin_topology.Graph.t -> users:int list -> point list
