(** Recursive layering (Sec. 2.1): LIPSIN-over-LIPSIN overlays of
    increasing size on TA2, with weighted underlay trees — measuring
    what a stacked layer costs (underlay traversals vs direct
    delivery) and confirming the evaluation results are robust to
    Rocketfuel-style link weights. *)

val run : ?trials:int -> Format.formatter -> unit
