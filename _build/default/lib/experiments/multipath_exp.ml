module Rng = Lipsin_util.Rng
module Lit = Lipsin_bloom.Lit
module Graph = Lipsin_topology.Graph
module As_presets = Lipsin_topology.As_presets
module Assignment = Lipsin_core.Assignment
module Multipath = Lipsin_core.Multipath
module Net = Lipsin_sim.Net
module Run = Lipsin_sim.Run

let run ?(trials = 200) ppf =
  Format.fprintf ppf
    "Multipath spraying: disjoint path availability and failover (%d pairs/AS)@."
    trials;
  Format.fprintf ppf "%-8s | %9s | %10s | %12s@." "AS" "disjoint"
    "stretch" "failover ok";
  Format.fprintf ppf "%s@." (String.make 50 '-');
  List.iter
    (fun (name, graph) ->
      let assignment = Assignment.make Lit.default (Rng.of_int 191) graph in
      let rng = Rng.of_int 193 in
      let disjoint = ref 0 and stretch_acc = ref 0.0 in
      let failover_ok = ref 0 and failover_tried = ref 0 in
      for _ = 1 to trials do
        let picks = Rng.sample rng 2 (Graph.node_count graph) in
        match Multipath.plan assignment ~src:picks.(0) ~dst:picks.(1) with
        | Error _ -> ()
        | Ok mp ->
          if mp.Multipath.disjoint then begin
            incr disjoint;
            stretch_acc :=
              !stretch_acc
              +. (float_of_int (List.length mp.Multipath.secondary)
                 /. float_of_int (List.length mp.Multipath.primary));
            (* Failover: kill the primary's first link, odd packets
               must still arrive. *)
            incr failover_tried;
            let net = Net.make assignment in
            Net.fail_link net (List.hd mp.Multipath.primary);
            let table, zfilter = Multipath.spray mp ~packet_index:1 in
            let o =
              Run.deliver net ~src:picks.(0) ~table ~zfilter
                ~tree:mp.Multipath.secondary
            in
            if o.Run.reached.(picks.(1)) then incr failover_ok
          end
      done;
      Format.fprintf ppf "%-8s | %7.1f%% | %9.2fx | %7d/%d@." name
        (100.0 *. float_of_int !disjoint /. float_of_int trials)
        (if !disjoint = 0 then 0.0 else !stretch_acc /. float_of_int !disjoint)
        !failover_ok !failover_tried)
    (As_presets.all ());
  Format.fprintf ppf
    "(odd packets survive a primary-path failure with no signalling at all;@.";
  Format.fprintf ppf " stretch = secondary/primary path length.)@."
