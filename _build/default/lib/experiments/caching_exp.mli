(** In-network caching (Sec. 5.4): after Zipf-popular publications have
    seeded the opportunistic caches along their delivery trees, how
    many hops does a late subscriber's fetch travel versus fetching
    from the publisher, across cache capacities? *)

val run : ?fetches:int -> Format.formatter -> unit
