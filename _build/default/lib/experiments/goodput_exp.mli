(** Capacity-domain comparison: delivery ratio vs offered load for
    zFilter multicast (shared links loaded once, false-positive links
    loaded uselessly) against per-subscriber unicast (shared links
    loaded per subscriber).  Quantifies the Sec. 1 claim that the
    fabric "achieves both low latency and efficient use of
    resources". *)

val run : ?topics:int -> Format.formatter -> unit
