module Rng = Lipsin_util.Rng
module Stats = Lipsin_util.Stats
module Lit = Lipsin_bloom.Lit
module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module As_presets = Lipsin_topology.As_presets
module Assignment = Lipsin_core.Assignment
module Candidate = Lipsin_core.Candidate
module Select = Lipsin_core.Select
module Net = Lipsin_sim.Net
module Timed = Lipsin_sim.Timed

let run ?(trials = 200) ppf =
  let g = As_presets.as6461 () in
  let assignment = Assignment.make Lit.default (Rng.of_int 131) g in
  let net = Net.make assignment in
  let rng = Rng.of_int 137 in
  Format.fprintf ppf
    "Multicast latency, AS6461 (%d trials; 3us/node, 0.5us/link; overlay@."
    trials;
  Format.fprintf ppf " relays pay a 60us end-host bounce):@.";
  Format.fprintf ppf "%5s | %12s %12s | %14s@." "users" "native mu(us)"
    "native p95" "overlay mu(us)";
  Format.fprintf ppf "%s@." (String.make 56 '-');
  List.iter
    (fun users ->
      let native = ref [] and overlay = ref [] in
      for _ = 1 to trials do
        let picks = Rng.sample rng users (Graph.node_count g) in
        let src = picks.(0) in
        let subscribers = Array.to_list (Array.sub picks 1 (users - 1)) in
        let tree = Spt.delivery_tree g ~root:src ~subscribers in
        match Select.select_fpa (Candidate.build assignment ~tree) with
        | None -> ()
        | Some c ->
          let arrivals =
            Timed.deliver net ~src ~table:c.Candidate.table
              ~zfilter:c.Candidate.zfilter
          in
          (match Timed.subscriber_latencies arrivals subscribers with
          | Some s ->
            native := s.Stats.mean :: !native;
            (* Overlay: the source relays through the first subscriber,
               which re-sends to the rest (a 2-level application tree). *)
            let relay = List.hd subscribers in
            let per_sub =
              List.map
                (fun dst ->
                  if dst = relay then
                    Timed.overlay_equivalent_latency g ~src ~relays:[] ~dst
                  else
                    Timed.overlay_equivalent_latency g ~src ~relays:[ relay ] ~dst)
                subscribers
            in
            overlay := Stats.mean (Array.of_list per_sub) :: !overlay
          | None -> ())
      done;
      let native = Stats.summarize (Array.of_list !native) in
      let overlay = Stats.summarize (Array.of_list !overlay) in
      Format.fprintf ppf "%5d | %12.1f %12.1f | %14.1f@." users
        native.Stats.mean native.Stats.p95 overlay.Stats.mean)
    [ 4; 8; 16 ]
