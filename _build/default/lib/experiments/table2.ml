module Lit = Lipsin_bloom.Lit
module As_presets = Lipsin_topology.As_presets

(* Paper values for the side-by-side: (users, AS, eff_mean, fpr_mean). *)
let paper =
  [
    (4, "TA2", 99.92, 0.02); (4, "AS1221", 98.08, 0.37); (4, "AS3257", 99.83, 0.02);
    (8, "TA2", 99.6, 0.2); (8, "AS1221", 97.78, 0.54); (8, "AS3257", 98.95, 0.28);
    (16, "TA2", 97.92, 0.83); (16, "AS1221", 95.51, 1.28); (16, "AS3257", 92.37, 1.76);
    (24, "TA2", 95.2, 1.95); (24, "AS1221", 92.06, 2.65); (24, "AS3257", 82.27, 4.17);
    (32, "TA2", 92.04, 3.46); (32, "AS1221", 88.22, 4.32); (32, "AS3257", 71.47, 7.3);
  ]

let paper_for users name =
  List.find_opt (fun (u, n, _, _) -> u = users && n = name) paper

let run ?(trials = 500) ppf =
  let config =
    {
      Trial.default_config with
      Trial.params = Lit.paper_variable;
      selection = Trial.Fpa;
      trials;
    }
  in
  Format.fprintf ppf
    "Table 2: stateless forwarding, d=8, variable k, fpa selection (%d trials)@."
    trials;
  Format.fprintf ppf "%5s %-8s | %13s | %15s | %13s | %8s | %8s@." "users" "AS"
    "links mu/95th" "effic%% mu/95th" "fpr%% mu/95th" "unicast%" "paper e/f";
  Format.fprintf ppf "%s@." (String.make 100 '-');
  let topologies = [ ("TA2", As_presets.ta2 ()); ("AS1221", As_presets.as1221 ());
                     ("AS3257", As_presets.as3257 ()) ] in
  List.iter
    (fun users ->
      List.iter
        (fun (name, graph) ->
          let p = Trial.run config graph ~users in
          let paper_str =
            match paper_for users name with
            | Some (_, _, e, f) -> Printf.sprintf "%5.1f/%4.2f" e f
            | None -> "-"
          in
          Format.fprintf ppf
            "%5d %-8s | %6.1f %6.1f | %7.2f %7.2f | %6.2f %6.2f | %8.1f | %s@."
            users name p.Trial.links_mean p.Trial.links_p95
            p.Trial.efficiency_mean p.Trial.efficiency_p95 p.Trial.fpr_mean
            p.Trial.fpr_p95 p.Trial.unicast_efficiency paper_str)
        topologies;
      Format.fprintf ppf "%s@." (String.make 100 '-'))
    [ 4; 8; 16; 24; 32 ]
