module Rng = Lipsin_util.Rng
module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module As_presets = Lipsin_topology.As_presets
module Network_cache = Lipsin_cache.Network_cache
module Scenario = Lipsin_workload.Scenario

let run ?(fetches = 2000) ppf =
  let g = As_presets.as1221 () in
  let config =
    { Scenario.default with Scenario.topics = 500; max_subscribers = 24; seed = 107 }
  in
  let publications = 300 in
  Format.fprintf ppf
    "In-network caching on AS1221: %d Zipf publications seed the caches,@."
    publications;
  Format.fprintf ppf "then %d named fetches from random nodes:@." fetches;
  Format.fprintf ppf "%9s | %8s | %10s | %10s | %9s@." "capacity" "hit rate"
    "mean hops" "full hops" "saved";
  Format.fprintf ppf "%s@." (String.make 58 '-');
  List.iter
    (fun capacity ->
      let nc = Network_cache.create g ~capacity in
      let loads = Scenario.sample config g ~n:publications in
      (* Publication i of topic rank r: topic id = rank, so popular
         topics are published (and re-cached) repeatedly. *)
      let publisher_of = Hashtbl.create 64 in
      Array.iter
        (fun load ->
          let topic = Int64.of_int load.Scenario.rank in
          Hashtbl.replace publisher_of topic load.Scenario.publisher;
          let tree =
            Spt.delivery_tree g ~root:load.Scenario.publisher
              ~subscribers:load.Scenario.subscribers
          in
          Network_cache.on_delivery nc ~tree ~topic ~payload:"payload")
        loads;
      let rng = Rng.of_int (109 + capacity) in
      let zipf = Lipsin_util.Zipf.create ~n:config.Scenario.topics ~s:1.0 in
      let hits = ref 0 and asked = ref 0 in
      let hops_acc = ref 0 and full_acc = ref 0 in
      for _ = 1 to fetches do
        let topic = Int64.of_int (Lipsin_util.Zipf.draw zipf rng) in
        match Hashtbl.find_opt publisher_of topic with
        | None -> ()  (* topic never published *)
        | Some publisher -> (
          incr asked;
          let subscriber = Rng.int rng (Graph.node_count g) in
          match Network_cache.fetch nc ~subscriber ~publisher ~topic with
          | Some f ->
            incr hits;
            hops_acc := !hops_acc + f.Network_cache.hops;
            full_acc := !full_acc + f.Network_cache.full_hops
          | None ->
            (* Cache miss everywhere: pay the full path. *)
            let dist = (Spt.distances g ~root:publisher).(subscriber) in
            hops_acc := !hops_acc + dist;
            full_acc := !full_acc + dist)
      done;
      let asked_f = float_of_int (max 1 !asked) in
      Format.fprintf ppf "%9d | %7.1f%% | %10.2f | %10.2f | %8.1f%%@." capacity
        (100.0 *. float_of_int !hits /. asked_f)
        (float_of_int !hops_acc /. asked_f)
        (float_of_int !full_acc /. asked_f)
        (100.0
        *. (1.0 -. (float_of_int !hops_acc /. float_of_int (max 1 !full_acc)))))
    [ 2; 8; 32; 128 ];
  Format.fprintf ppf
    "(larger per-node caches serve popular topics closer to the consumer.)@."
