(** Figure 5 reproduction: false-positive rate and forwarding
    efficiency versus the number of users in AS6461 (d = 8, k = 5) for
    the standard, fpa-optimised and fpr-optimised zFilters.  Prints the
    three curve pairs as a text table (one row per user count). *)

val run : ?trials:int -> ?step:int -> ?csv:bool -> Format.formatter -> unit
(** With [csv], emits a plot-ready
    [users,std_fpr,fpa_fpr,fpr_fpr,std_eff,fpa_eff,fpr_eff] series
    instead of the text table. *)
