(** Loop prevention (Sec. 3.3.3): adversarial zFilters that close a
    cycle through false-positive-like extra links, delivered in TTL
    mode with and without the incoming-LIT cache.  The paper's claim:
    "a small caching memory does not penalize the performance" while
    stopping endless loops. *)

val run : ?trials:int -> Format.formatter -> unit
