(** Subscriber churn (Sec. 4.3): "as we can freely combine the stateful
    and stateless methods, we can readily accommodate a number of
    changes in the popular topics before needing to signal a state
    change in the network".

    For a popular topic served by core-rooted virtual links, each join
    is classified: already covered by an installed virtual tree (zero
    network change), absorbable by the sender's stateless zFilter (no
    signalling, only the publisher's filter changes), or requiring a
    virtual-link extension (signalling).  IP multicast, by contrast,
    installs state on every join's path. *)

val run : ?joins:int -> Format.formatter -> unit
