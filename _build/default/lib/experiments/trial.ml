module Rng = Lipsin_util.Rng
module Stats = Lipsin_util.Stats
module Lit = Lipsin_bloom.Lit
module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module Assignment = Lipsin_core.Assignment
module Candidate = Lipsin_core.Candidate
module Select = Lipsin_core.Select
module Net = Lipsin_sim.Net
module Run = Lipsin_sim.Run
module Unicast = Lipsin_baseline.Unicast

type selection = Standard | Fpa | Fpr

type config = {
  params : Lit.params;
  selection : selection;
  trials : int;
  seed : int;
  fill_limit : float;
}

let default_config =
  { params = Lit.default; selection = Fpa; trials = 500; seed = 1; fill_limit = 0.7 }

type point = {
  users : int;
  links_mean : float;
  links_p95 : float;
  efficiency_mean : float;
  efficiency_p95 : float;
  fpr_mean : float;
  fpr_p95 : float;
  unicast_efficiency : float;
  over_limit : int;
  efficiency_ci95 : float;
  fpr_ci95 : float;
}

let select config assignment candidates ~tree =
  match config.selection with
  | Standard ->
    let c = Select.standard candidates in
    if Candidate.fill_factor c <= config.fill_limit then Some c else None
  | Fpa -> Select.select_fpa ~fill_limit:config.fill_limit candidates
  | Fpr ->
    let test = Select.default_test_set assignment ~tree in
    Select.select_fpr ~fill_limit:config.fill_limit assignment candidates ~test

(* Half-width of the normal-approximation 95% confidence interval of
   the sample mean. *)
let ci95 xs =
  let n = Array.length xs in
  if n < 2 then 0.0 else 1.96 *. Stats.stddev xs /. sqrt (float_of_int n)

let run config graph ~users =
  if users < 2 then invalid_arg "Trial.run: users must be at least 2";
  let assignment = Assignment.make config.params (Rng.of_int config.seed) graph in
  let net = Net.make ~fill_limit:config.fill_limit assignment in
  let rng = Rng.of_int (config.seed + (users * 7919)) in
  let links = ref [] and effs = ref [] and fprs = ref [] in
  let uni_acc = ref 0.0 in
  let over_limit = ref 0 in
  let completed = ref 0 in
  for _ = 1 to config.trials do
    let picks = Rng.sample rng users (Graph.node_count graph) in
    let publisher = picks.(0) in
    let subscribers = Array.to_list (Array.sub picks 1 (users - 1)) in
    let tree = Spt.delivery_tree graph ~root:publisher ~subscribers in
    let candidates = Candidate.build assignment ~tree in
    match select config assignment candidates ~tree with
    | None -> incr over_limit
    | Some c ->
      let outcome =
        Run.deliver net ~src:publisher ~table:c.Candidate.table
          ~zfilter:c.Candidate.zfilter ~tree
      in
      incr completed;
      links := float_of_int (List.length tree) :: !links;
      effs := (100.0 *. Run.forwarding_efficiency outcome ~tree) :: !effs;
      fprs := (100.0 *. Run.false_positive_rate outcome) :: !fprs;
      uni_acc := !uni_acc +. (100.0 *. Unicast.efficiency graph ~root:publisher ~subscribers)
  done;
  let links = Array.of_list !links in
  let effs = Array.of_list !effs in
  let fprs = Array.of_list !fprs in
  let n = max 1 !completed in
  {
    users;
    links_mean = Stats.mean links;
    links_p95 = (if Array.length links = 0 then 0.0 else Stats.percentile links 95.0);
    efficiency_mean = Stats.mean effs;
    efficiency_p95 = (if Array.length effs = 0 then 0.0 else Stats.percentile effs 5.0);
    fpr_mean = Stats.mean fprs;
    fpr_p95 = (if Array.length fprs = 0 then 0.0 else Stats.percentile fprs 95.0);
    unicast_efficiency = !uni_acc /. float_of_int n;
    over_limit = !over_limit;
    efficiency_ci95 = ci95 effs;
    fpr_ci95 = ci95 fprs;
  }

let run_curve config graph ~users = List.map (fun u -> run config graph ~users:u) users
