module Rng = Lipsin_util.Rng
module Lit = Lipsin_bloom.Lit
module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module As_presets = Lipsin_topology.As_presets
module Assignment = Lipsin_core.Assignment
module Split = Lipsin_core.Split
module Net = Lipsin_sim.Net
module Dense = Lipsin_stateful.Dense
module Virtual_link = Lipsin_stateful.Virtual_link

let run ?(trials = 50) ppf =
  let g = As_presets.as3257 () in
  let assignment = Assignment.make Lit.default (Rng.of_int 91) g in
  let net = Net.make assignment in
  Format.fprintf ppf
    "Multiple sending vs virtual links (AS3257, fill limit 0.4, %d trials)@."
    trials;
  Format.fprintf ppf "%5s | %6s %10s | %9s %9s@." "subs" "parts"
    "dup ovhd %" "vlink eff" "vlink state";
  Format.fprintf ppf "%s@." (String.make 56 '-');
  List.iter
    (fun subs ->
      let rng = Rng.of_int (97 + subs) in
      let parts_acc = ref 0 and overhead_acc = ref 0.0 and split_ok = ref 0 in
      let vl_eff = ref 0.0 and vl_state = ref 0 in
      for _ = 1 to trials do
        let picks = Rng.sample rng (subs + 1) (Graph.node_count g) in
        let publisher = picks.(0) in
        let subscribers = Array.to_list (Array.sub picks 1 subs) in
        (match Split.plan ~fill_limit:0.4 assignment ~root:publisher ~subscribers with
        | Ok parts ->
          incr split_ok;
          parts_acc := !parts_acc + List.length parts;
          let union = Split.total_traversals parts - Split.duplicate_traversals parts in
          overhead_acc :=
            !overhead_acc
            +. (100.0 *. float_of_int (Split.duplicate_traversals parts)
               /. float_of_int (max 1 union))
        | Error _ -> ());
        let plan =
          Dense.plan assignment rng ~publisher ~subscribers
            ~cores:(max 2 (subs / 8))
        in
        let result = Dense.execute net plan ~table:0 in
        vl_eff := !vl_eff +. (100.0 *. result.Dense.efficiency);
        vl_state :=
          !vl_state
          + List.fold_left
              (fun acc v -> acc + List.length (Virtual_link.source_nodes v))
              0 plan.Dense.virtuals
      done;
      let ok = max 1 !split_ok in
      Format.fprintf ppf "%5d | %6.1f %10.1f | %8.1f%% %9.1f@." subs
        (float_of_int !parts_acc /. float_of_int ok)
        (!overhead_acc /. float_of_int ok)
        (!vl_eff /. float_of_int trials)
        (float_of_int !vl_state /. float_of_int trials))
    [ 24; 40; 56; 80 ];
  Format.fprintf ppf
    "(splitting keeps the network stateless at the price of duplicate@.";
  Format.fprintf ppf
    " traversals on shared links; virtual links buy efficiency with state.)@."
