module Rng = Lipsin_util.Rng
module Lit = Lipsin_bloom.Lit
module Graph = Lipsin_topology.Graph
module Assignment = Lipsin_core.Assignment
module Node_engine = Lipsin_forwarding.Node_engine

let run ppf =
  let d = 8 and links = 128 and m = 248 and port_bits = 8 and k = 5 in
  let dense = d * links * (m + port_bits) in
  let log2m = 8 (* ceil log2 248 *) in
  let sparse = d * links * ((k * log2m) + port_bits) in
  Format.fprintf ppf "Forwarding table memory (Eq. 4), d=%d, %d links, %d-bit LITs:@."
    d links m;
  Format.fprintf ppf "  dense  : %d Kbit   (paper: 256 Kbit)@." (dense / 1024);
  Format.fprintf ppf "  sparse : %d Kbit   (paper: ~48 Kbit)@." (sparse / 1024);
  (* Cross-check against a real engine: a star with 128 spokes. *)
  let g = Graph.create ~nodes:(links + 1) in
  for spoke = 1 to links do
    Graph.add_edge g 0 spoke
  done;
  let assignment = Assignment.make Lit.default (Rng.of_int 5) g in
  let engine = Node_engine.create assignment 0 in
  let dense_engine = Node_engine.forwarding_table_bits engine ~sparse:false in
  let sparse_engine = Node_engine.forwarding_table_bits engine ~sparse:true in
  Format.fprintf ppf "  engine cross-check: dense %d Kbit, sparse %d Kbit@."
    (dense_engine / 1024) (sparse_engine / 1024);
  assert (dense_engine = dense);
  assert (sparse_engine = sparse)
