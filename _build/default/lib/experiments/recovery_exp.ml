module Rng = Lipsin_util.Rng
module Lit = Lipsin_bloom.Lit
module Zfilter = Lipsin_bloom.Zfilter
module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module As_presets = Lipsin_topology.As_presets
module Assignment = Lipsin_core.Assignment
module Candidate = Lipsin_core.Candidate
module Select = Lipsin_core.Select
module Net = Lipsin_sim.Net
module Run = Lipsin_sim.Run
module Recovery = Lipsin_forwarding.Recovery

type tally = {
  mutable attempts : int;
  mutable recovered : int;
  mutable no_backup : int;
  mutable stretch_acc : float;
  mutable fill_acc : float;
}

let fresh_tally () =
  { attempts = 0; recovered = 0; no_backup = 0; stretch_acc = 0.0; fill_acc = 0.0 }

let run ?(trials = 100) ppf =
  let graph = As_presets.as1221 () in
  let assignment = Assignment.make Lit.default (Rng.of_int 41) graph in
  let rng = Rng.of_int 43 in
  let vlid = fresh_tally () and rewrite = fresh_tally () in
  for _ = 1 to trials do
    (* Fresh net per trial so installed state does not leak across
       trials. *)
    let net = Net.make assignment in
    let picks = Rng.sample rng 8 (Graph.node_count graph) in
    let publisher = picks.(0) in
    let subscribers = Array.to_list (Array.sub picks 1 7) in
    let tree = Spt.delivery_tree graph ~root:publisher ~subscribers in
    let candidates = Candidate.build assignment ~tree in
    match Select.select_fpa candidates with
    | None -> ()
    | Some c ->
      let table = c.Candidate.table and zfilter = c.Candidate.zfilter in
      (* Fail a random tree link. *)
      let tree_arr = Array.of_list tree in
      let failed = tree_arr.(Rng.int rng (Array.length tree_arr)) in
      (match Recovery.backup_path graph ~link:failed with
      | None ->
        vlid.no_backup <- vlid.no_backup + 1;
        rewrite.no_backup <- rewrite.no_backup + 1
      | Some backup ->
        (* Scheme 1: VLId-based. *)
        vlid.attempts <- vlid.attempts + 1;
        (match
           Recovery.vlid_activate assignment ~engine_of:(Net.engine net) ~failed
         with
        | Error _ -> ()
        | Ok () ->
          let o = Run.deliver net ~src:publisher ~table ~zfilter ~tree in
          if Run.all_reached o subscribers then begin
            vlid.recovered <- vlid.recovered + 1;
            vlid.stretch_acc <-
              vlid.stretch_acc
              +. (float_of_int o.Run.link_traversals /. float_of_int (List.length tree))
          end;
          Recovery.vlid_deactivate assignment ~engine_of:(Net.engine net) ~failed);
        (* Scheme 2: zFilter rewrite, on a clean net. *)
        let net2 = Net.make assignment in
        Net.fail_link net2 failed;
        rewrite.attempts <- rewrite.attempts + 1;
        let patch = Recovery.zfilter_patch assignment ~table ~backup in
        let patched = Recovery.apply_patch zfilter patch in
        let tree_patched =
          (* The intended links now include the backup path. *)
          backup @ List.filter (fun l -> l.Graph.index <> failed.Graph.index) tree
        in
        let o2 =
          Run.deliver net2 ~src:publisher ~table ~zfilter:patched ~tree:tree_patched
        in
        if Run.all_reached o2 subscribers then begin
          rewrite.recovered <- rewrite.recovered + 1;
          rewrite.stretch_acc <-
            rewrite.stretch_acc
            +. (float_of_int o2.Run.link_traversals /. float_of_int (List.length tree));
          rewrite.fill_acc <-
            rewrite.fill_acc
            +. (Zfilter.fill_factor patched -. Zfilter.fill_factor zfilter)
        end)
  done;
  Format.fprintf ppf "Fast recovery on AS1221, 8-user trees, %d trials@." trials;
  let report name t ~fill =
    Format.fprintf ppf
      "  %-16s recovered %d/%d (bridges skipped: %d), mean stretch %.2fx%s@."
      name t.recovered t.attempts t.no_backup
      (if t.recovered = 0 then 0.0 else t.stretch_acc /. float_of_int t.recovered)
      (if fill then
         Printf.sprintf ", mean fill increase %.3f"
           (if t.recovered = 0 then 0.0 else t.fill_acc /. float_of_int t.recovered)
       else "")
  in
  report "VLId-based" vlid ~fill:false;
  report "zFilter-rewrite" rewrite ~fill:true;
  Format.fprintf ppf
    "(paper: both reroute single link/node failures with zero convergence@.";
  Format.fprintf ppf
    " time; such failures are ~85%% of unplanned outages.)@."
