module Rng = Lipsin_util.Rng
module Lit = Lipsin_bloom.Lit
module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module As_presets = Lipsin_topology.As_presets
module Assignment = Lipsin_core.Assignment
module Candidate = Lipsin_core.Candidate
module Select = Lipsin_core.Select
module Net = Lipsin_sim.Net
module Run = Lipsin_sim.Run
module Fluid = Lipsin_sim.Fluid
module Scenario = Lipsin_workload.Scenario

(* Build the flow descriptions once: for each topic, the links a
   zFilter delivery actually crosses (including overdeliveries) and the
   links per-subscriber unicast would cross. *)
let build_flows graph assignment net loads =
  Array.to_list loads
  |> List.filter_map (fun load ->
         let root = load.Scenario.publisher in
         let subscribers = load.Scenario.subscribers in
         let tree = Spt.delivery_tree graph ~root ~subscribers in
         match Select.select_fpa (Candidate.build assignment ~tree) with
         | None -> None
         | Some c ->
           let outcome =
             Run.deliver net ~src:root ~table:c.Candidate.table
               ~zfilter:c.Candidate.zfilter ~tree
           in
           let parents = Spt.bfs_parents graph ~root in
           let paths =
             List.map (fun s -> (s, Spt.path_to graph parents s)) subscribers
           in
           let unicast_links = List.concat_map snd paths in
           Some (outcome.Run.traversed, unicast_links, paths))

let run ?(topics = 300) ppf =
  let graph = As_presets.as3257 () in
  let assignment = Assignment.make Lit.default (Rng.of_int 167) graph in
  let net = Net.make assignment in
  let config =
    { Scenario.default with Scenario.topics = 5_000; max_subscribers = 24; seed = 173 }
  in
  let loads = Scenario.sample config graph ~n:topics in
  let flows = build_flows graph assignment net loads in
  Format.fprintf ppf
    "Delivery ratio vs offered load (AS3257, %d Zipf topics, capacity 100)@."
    topics;
  Format.fprintf ppf "%10s | %10s %9s | %10s %9s@." "rate/topic" "zF ratio"
    "zF maxU" "uni ratio" "uni maxU";
  Format.fprintf ppf "%s@." (String.make 58 '-');
  List.iter
    (fun rate ->
      let zf = Fluid.create graph ~capacity:100.0 in
      let uni = Fluid.create graph ~capacity:100.0 in
      List.iter
        (fun (zf_links, uni_links, paths) ->
          Fluid.add_flow zf { Fluid.rate; links = zf_links; paths };
          Fluid.add_flow uni { Fluid.rate; links = uni_links; paths })
        flows;
      Format.fprintf ppf "%10.1f | %9.1f%% %9.2f | %9.1f%% %9.2f@." rate
        (100.0 *. Fluid.delivery_ratio zf)
        (Fluid.max_utilization zf)
        (100.0 *. Fluid.delivery_ratio uni)
        (Fluid.max_utilization uni))
    [ 0.5; 1.0; 2.0; 4.0; 8.0 ];
  Format.fprintf ppf
    "(unicast re-loads shared links per subscriber and saturates first;@.";
  Format.fprintf ppf
    " the zFilter column pays only for its false-positive traffic.)@."
