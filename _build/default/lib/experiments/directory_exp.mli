(** The Sec. 5.2 rendezvous resource analysis: the paper's storage
    arithmetic reproduced from parameters, plus a simulation of the
    multi-level lookup caching it proposes (edge caches over
    partitioned rendezvous nodes) under Zipf lookup traffic. *)

val run : ?lookups:int -> Format.formatter -> unit
