module Rng = Lipsin_util.Rng
module Zipf = Lipsin_util.Zipf
module Directory = Lipsin_interdomain.Directory

let run ?(lookups = 50_000) ppf =
  Format.fprintf ppf "Sec. 5.2 resource consumption:@.";
  Format.fprintf ppf
    "  10^11 topics x (40B name + 34B forwarding header) = %.1f TB (paper: ~10 TB)@."
    (Directory.resource_estimate ~topics:1e11 ~topic_bytes:40 ~header_bytes:34);
  Format.fprintf ppf
    "  per-domain active slice, 10^9 topics: %.1f GB (DRAM of a few servers)@."
    (1e3 *. Directory.resource_estimate ~topics:1e9 ~topic_bytes:40 ~header_bytes:34);
  let population = 200_000 in
  let dir =
    Directory.create ~rendezvous_nodes:8 ~edge_nodes:4
      ~edge_cache_capacity:4096
  in
  for i = 1 to population do
    Directory.install dir ~topic:(Int64.of_int i) ~zfilter:"zf"
  done;
  let zipf = Zipf.create ~n:population ~s:1.0 in
  let rng = Rng.of_int 197 in
  for _ = 1 to lookups do
    let topic = Int64.of_int (Zipf.draw zipf rng) in
    let edge = Rng.int rng 4 in
    ignore (Directory.lookup dir ~edge ~topic)
  done;
  let s = Directory.stats dir in
  Format.fprintf ppf
    "Multi-level lookup cache: %d-topic directory, 8 rendezvous nodes, 4 edges@."
    population;
  Format.fprintf ppf
    "  %d Zipf lookups: %.1f%% served at the edge, %.1f%% at rendezvous, %d misses@."
    s.Directory.lookups
    (100.0 *. float_of_int s.Directory.edge_hits /. float_of_int s.Directory.lookups)
    (100.0
    *. float_of_int s.Directory.rendezvous_hits
    /. float_of_int s.Directory.lookups)
    s.Directory.misses;
  Format.fprintf ppf
    "  (the paper: \"a few million most active topics\" cached at edges make@.";
  Format.fprintf ppf
    "   one or a few server PCs enough for the typical lookup load.)@."
