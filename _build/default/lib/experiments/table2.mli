(** Table 2 reproduction: stateless zFilter forwarding with d = 8 and
    the variable k distribution, fpa selection — links used,
    forwarding efficiency and fpr (mean and 95th percentile) for 4–32
    users on TA2, AS1221 and AS3257; plus the Sec. 4.2 multiple-unicast
    comparison. *)

val run : ?trials:int -> Format.formatter -> unit
