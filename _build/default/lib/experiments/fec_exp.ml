module Rng = Lipsin_util.Rng
module Lit = Lipsin_bloom.Lit
module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module As_presets = Lipsin_topology.As_presets
module Assignment = Lipsin_core.Assignment
module Candidate = Lipsin_core.Candidate
module Net = Lipsin_sim.Net
module Run = Lipsin_sim.Run
module Lateral = Lipsin_fec.Lateral

let run ?(windows = 60) ppf =
  let g = As_presets.ta2 () in
  let assignment = Assignment.make Lit.default (Rng.of_int 239) g in
  let net = Net.make assignment in
  let rng = Rng.of_int 241 in
  let picks = Rng.sample rng 9 (Graph.node_count g) in
  let src = picks.(0) in
  let subscribers = Array.to_list (Array.sub picks 1 8) in
  let tree = Spt.delivery_tree g ~root:src ~subscribers in
  let c = Candidate.build_one assignment ~tree ~table:0 in
  let window = List.init 8 (fun i -> Printf.sprintf "pkt-%d" i) in
  Format.fprintf ppf
    "Lateral error correction on TA2 (8 subscribers, 8-packet windows + 1 XOR@.";
  Format.fprintf ppf " repair, %d windows per point):@." windows;
  Format.fprintf ppf "%8s | %14s | %14s@." "loss" "complete raw" "complete +FEC";
  Format.fprintf ppf "%s@." (String.make 44 '-');
  List.iter
    (fun probability ->
      let loss_rng = Rng.of_int (251 + int_of_float (probability *. 1000.0)) in
      let raw = ref 0 and fec = ref 0 in
      for _ = 1 to windows do
        let report =
          Lateral.send_window net ~src ~table:0 ~zfilter:c.Candidate.zfilter
            ~tree ~subscribers ~window
            ~loss:{ Run.probability; rng = loss_rng }
        in
        raw := !raw + report.Lateral.complete_without_fec;
        fec := !fec + report.Lateral.complete_with_fec
      done;
      let total = float_of_int (windows * List.length subscribers) in
      Format.fprintf ppf "%7.1f%% | %13.1f%% | %13.1f%%@."
        (100.0 *. probability)
        (100.0 *. float_of_int !raw /. total)
        (100.0 *. float_of_int !fec /. total))
    [ 0.001; 0.005; 0.01; 0.02; 0.05 ];
  Format.fprintf ppf
    "(one parity packet per window repairs any single loss locally,@.";
  Format.fprintf ppf " with no retransmission round trip to the publisher.)@."
