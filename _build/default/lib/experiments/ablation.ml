module Rng = Lipsin_util.Rng
module Lit = Lipsin_bloom.Lit
module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module As_presets = Lipsin_topology.As_presets
module Xcast = Lipsin_baseline.Xcast

let run ?(trials = 300) ppf =
  let graph = As_presets.as6461 () in
  let base = { Trial.default_config with Trial.trials; selection = Trial.Fpa } in
  Format.fprintf ppf "Ablation 1: filter width m (d=8, k=5, AS6461, 16 users)@.";
  Format.fprintf ppf "%6s | %10s | %10s | %12s@." "m" "fpr %" "effic %"
    "header bytes";
  List.iter
    (fun m ->
      let config = { base with Trial.params = Lit.constant_k ~m ~d:8 ~k:5 } in
      let p = Trial.run config graph ~users:16 in
      Format.fprintf ppf "%6d | %10.2f | %10.2f | %12d@." m p.Trial.fpr_mean
        p.Trial.efficiency_mean
        (Xcast.zfilter_header_bytes ~m))
    [ 120; 248; 504 ];
  Format.fprintf ppf "Ablation 2: candidate count d (m=248, k=5, AS6461, 24 users)@.";
  Format.fprintf ppf "%6s | %10s | %10s@." "d" "fpr %" "effic %";
  List.iter
    (fun d ->
      let config = { base with Trial.params = Lit.constant_k ~m:248 ~d ~k:5 } in
      let p = Trial.run config graph ~users:24 in
      Format.fprintf ppf "%6d | %10.2f | %10.2f@." d p.Trial.fpr_mean
        p.Trial.efficiency_mean)
    [ 1; 2; 4; 8; 16 ];
  Format.fprintf ppf "Ablation 3: Xcast header crossover (m=248)@.";
  Format.fprintf ppf
    "  zFilter header is %d bytes; the Xcast list outgrows it at %d destinations@."
    (Xcast.zfilter_header_bytes ~m:248)
    (Xcast.crossover_destinations ~m:248);
  (* Whole-delivery header bytes over the wire: the zFilter header rides
     every tree link at fixed size; Xcast shrinks per hop but pays per
     destination. *)
  let rng = Rng.of_int 389 in
  Format.fprintf ppf "  per-delivery header bytes on AS6461 trees:@.";
  Format.fprintf ppf "  %5s | %10s | %10s | %10s@." "users" "zFilter" "Xcast"
    "rewrites";
  List.iter
    (fun users ->
      let z_acc = ref 0 and x_acc = ref 0 and rw_acc = ref 0 and n = ref 0 in
      for _ = 1 to 100 do
        let picks = Rng.sample rng users (Graph.node_count graph) in
        let root = picks.(0) in
        let subscribers = Array.to_list (Array.sub picks 1 (users - 1)) in
        let tree = Spt.delivery_tree graph ~root ~subscribers in
        incr n;
        z_acc := !z_acc + (List.length tree * Xcast.zfilter_header_bytes ~m:248);
        x_acc := !x_acc + Xcast.delivery_header_cost graph ~root ~subscribers;
        rw_acc := !rw_acc + Xcast.rewrite_operations graph ~root ~subscribers
      done;
      Format.fprintf ppf "  %5d | %10d | %10d | %10d@." users (!z_acc / !n)
        (!x_acc / !n) (!rw_acc / !n))
    [ 4; 16; 32 ];
  Format.fprintf ppf
    "  (Xcast's aggregate header bytes stay lower because the list shrinks@.";
  Format.fprintf ppf
    "   towards the leaves, but every branching router re-parses and@.";
  Format.fprintf ppf
    "   rewrites it -- the per-hop work in the rewrites column -- while the@.";
  Format.fprintf ppf
    "   zFilter is fixed-size, never rewritten, and hides the receiver set.)@."
