module Rng = Lipsin_util.Rng
module Lit = Lipsin_bloom.Lit
module Graph = Lipsin_topology.Graph
module As_presets = Lipsin_topology.As_presets
module Assignment = Lipsin_core.Assignment
module Net = Lipsin_sim.Net
module Dense = Lipsin_stateful.Dense

let coverage_point graph assignment net rng ~coverage ~trials =
  let nodes = Graph.node_count graph in
  let count = max 1 (int_of_float (coverage *. float_of_int nodes)) in
  let eff_acc = ref 0.0 and ok = ref 0 and delivered = ref 0 in
  for _ = 1 to trials do
    let picks = Rng.sample rng (count + 1) nodes in
    let publisher = picks.(0) in
    let subscribers = Array.to_list (Array.sub picks 1 count) in
    let cores = max 2 (count / 8) in
    let plan = Dense.plan assignment rng ~publisher ~subscribers ~cores in
    let result = Dense.execute net plan ~table:0 in
    incr ok;
    if result.Dense.all_delivered then incr delivered;
    eff_acc := !eff_acc +. (100.0 *. result.Dense.efficiency)
  done;
  (!eff_acc /. float_of_int (max 1 !ok), !delivered, !ok)

let run ?(trials = 100) ppf =
  Format.fprintf ppf
    "Figure 6: stateful dense multicast efficiency vs node coverage (%d trials)@."
    trials;
  Format.fprintf ppf "%-8s | %7s %7s %7s %7s %7s | %s@." "AS" "10%" "20%"
    "30%" "40%" "50%" "delivered";
  Format.fprintf ppf "%s@." (String.make 78 '-');
  List.iter
    (fun (name, graph) ->
      let assignment = Assignment.make Lit.default (Rng.of_int 11) graph in
      let net = Net.make assignment in
      let rng = Rng.of_int 23 in
      let cells =
        List.map
          (fun coverage ->
            coverage_point graph assignment net rng ~coverage ~trials)
          [ 0.1; 0.2; 0.3; 0.4; 0.5 ]
      in
      let total_delivered = List.fold_left (fun a (_, d, _) -> a + d) 0 cells in
      let total_runs = List.fold_left (fun a (_, _, o) -> a + o) 0 cells in
      Format.fprintf ppf "%-8s |" name;
      List.iter (fun (eff, _, _) -> Format.fprintf ppf " %6.2f%%" eff) cells;
      Format.fprintf ppf " | %d/%d@." total_delivered total_runs)
    [ ("AS1221", As_presets.as1221 ()); ("AS3257", As_presets.as3257 ());
      ("AS6461", As_presets.as6461 ()) ];
  Format.fprintf ppf "(paper: all three curves stay within 92--100%%.)@."
