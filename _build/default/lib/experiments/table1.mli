(** Table 1 reproduction: graph characterization of the evaluation
    topologies, printed side by side with the paper's published
    values. *)

val run : Format.formatter -> unit
