(** Control-plane bootstrap cost (Sec. 2.2): rounds and LSA messages
    for the topology/rendezvous functions to converge on each
    evaluation topology, and re-convergence cost after a link
    failure. *)

val run : Format.formatter -> unit
