(** Table 5 reproduction: echo ("ping") latency through a plain wire,
    an IP router (5-entry LPM FIB) and a LIPSIN forwarding node.  The
    paper's finding: LIPSIN adds essentially nothing over the wire
    (96 µs vs 94 µs) while the IP router costs measurably more
    (102 µs).  We test the same ordering on the software pipeline. *)

val run : ?batches:int -> ?batch_size:int -> Format.formatter -> unit
