module Rng = Lipsin_util.Rng
module Lit = Lipsin_bloom.Lit
module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module As_presets = Lipsin_topology.As_presets
module Assignment = Lipsin_core.Assignment
module Candidate = Lipsin_core.Candidate
module Select = Lipsin_core.Select
module Net = Lipsin_sim.Net
module Run = Lipsin_sim.Run
module Load = Lipsin_sim.Load

type mode = Plain | Avoiding

let run_series graph assignment ~publications ~mode ~seed =
  let net = Net.make assignment in
  let load = Load.create graph in
  let rng = Rng.of_int seed in
  let fp_on_hot = ref 0 in
  for _ = 1 to publications do
    let users = 6 + Rng.int rng 10 in
    let picks = Rng.sample rng users (Graph.node_count graph) in
    let tree =
      Spt.delivery_tree graph ~root:picks.(0)
        ~subscribers:(Array.to_list (Array.sub picks 1 (users - 1)))
    in
    let candidates = Candidate.build assignment ~tree in
    let hot = Load.hottest load ~count:30 in
    let selected =
      match mode with
      | Plain -> Select.select_fpa candidates
      | Avoiding ->
        let test = Select.default_test_set assignment ~tree in
        Select.select_weighted assignment candidates ~test
          ~weight:(Select.avoid_set hot)
    in
    match selected with
    | None -> ()
    | Some c ->
      let o =
        Run.deliver net ~src:picks.(0) ~table:c.Candidate.table
          ~zfilter:c.Candidate.zfilter ~tree
      in
      Load.record load o;
      (* Count overdeliveries landing on currently-hot links. *)
      let hot_idx = List.map (fun l -> l.Graph.index) hot in
      let tree_idx = List.map (fun l -> l.Graph.index) tree in
      List.iter
        (fun l ->
          if
            List.mem l.Graph.index hot_idx
            && not (List.mem l.Graph.index tree_idx)
          then incr fp_on_hot)
        o.Run.traversed
  done;
  (Load.max_load load, Load.total load, !fp_on_hot)

let run ?(publications = 400) ppf =
  let graph = As_presets.as6461 () in
  let assignment = Assignment.make Lit.paper_variable (Rng.of_int 113) graph in
  Format.fprintf ppf
    "Congestion-aware selection on AS6461 (%d publications, 6-15 users each)@."
    publications;
  Format.fprintf ppf "%10s | %9s | %10s | %22s@." "selection" "max load"
    "total load" "overdeliveries on hot";
  Format.fprintf ppf "%s@." (String.make 62 '-');
  List.iter
    (fun (name, mode) ->
      let max_load, total, fp_hot =
        run_series graph assignment ~publications ~mode ~seed:127
      in
      Format.fprintf ppf "%10s | %9d | %10d | %22d@." name max_load total fp_hot)
    [ ("fpa", Plain); ("avoidance", Avoiding) ];
  Format.fprintf ppf
    "(same trees either way — avoidance only steers WHERE false positives land.)@."
