(** Link avoidance as traffic engineering (Sec. 3.2): with the hottest
    links as a dynamic avoidance Tset, does weighted candidate
    selection reduce the load concentration of a publication series
    compared to plain fpa selection? *)

val run : ?publications:int -> Format.formatter -> unit
