module Rng = Lipsin_util.Rng
module Lit = Lipsin_bloom.Lit
module As_presets = Lipsin_topology.As_presets
module Assignment = Lipsin_core.Assignment
module Scenario = Lipsin_workload.Scenario

let run ?(topics = 2000) ppf =
  let graph = As_presets.as3257 () in
  let assignment = Assignment.make Lit.default (Rng.of_int 71) graph in
  let config = { Scenario.default with Scenario.topics = 100_000; seed = 73 } in
  let agg = Scenario.evaluate config assignment ~n:topics () in
  Format.fprintf ppf
    "Zipf workload on AS3257: %d sampled topics from a %d-topic population@."
    agg.Scenario.sampled config.Scenario.topics;
  Format.fprintf ppf "  mean subscribers/topic : %.2f@." agg.Scenario.mean_subscribers;
  Format.fprintf ppf "  stateless (one zFilter): %d (%.1f%%)@."
    agg.Scenario.stateless_ok
    (100.0 *. float_of_int agg.Scenario.stateless_ok /. float_of_int agg.Scenario.sampled);
  Format.fprintf ppf "  needs state/splitting  : %d@." agg.Scenario.needs_state;
  Format.fprintf ppf "  mean efficiency (stateless): %.2f%%@."
    (100.0 *. agg.Scenario.mean_efficiency);
  Format.fprintf ppf "  mean fpr (stateless)       : %.3f%%@."
    (100.0 *. agg.Scenario.mean_fpr);
  Format.fprintf ppf
    "  IP SSM (S,G) state entries for the same workload: %d (LIPSIN: 0 for stateless topics)@."
    agg.Scenario.ssm_state_entries
