let paper = [ ("Plain wire", 94.0, 28.0); ("IP router", 102.0, 44.0); ("LIPSIN", 96.0, 28.0) ]

let run ?(batches = 100) ?(batch_size = 1000) ppf =
  Format.fprintf ppf "Table 5: echo latency through software implementations@.";
  Format.fprintf ppf "%-12s | %20s | %14s@." "path" "measured mu/sd (us)"
    "paper mu/sd";
  Format.fprintf ppf "%s@." (String.make 56 '-');
  let payload = String.make 56 'x' (* ICMP echo sized *) in
  let rows =
    [ ("Plain wire", Pipeline.Wire); ("IP router", Pipeline.Ip_router);
      ("IP 200k FIB", Pipeline.Ip_router_full);
      ("LIPSIN", Pipeline.Lipsin_switch) ]
  in
  List.iter
    (fun (name, path) ->
      let s = Pipeline.measure_echo path ~payload ~batches ~batch_size in
      let paper_mu, paper_sd =
        match List.find_opt (fun (n, _, _) -> n = name) paper with
        | Some (_, mu, sd) -> (mu, sd)
        | None -> (nan, nan)
      in
      Format.fprintf ppf "%-12s | %9.3f %9.3f | %6.0f %6.0f@." name
        s.Lipsin_util.Stats.mean s.Lipsin_util.Stats.stddev paper_mu paper_sd)
    rows;
  Format.fprintf ppf
    "(shape under test: the zFilter decision adds sub-microsecond cost over@.";
  Format.fprintf ppf
    " the wire, and beats LPM on a production-scale FIB; the paper's@.";
  Format.fprintf ppf
    " absolute numbers ride on ~94us of FreeBSD kernel + NIC cost.)@."
