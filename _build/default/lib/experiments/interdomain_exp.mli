(** Inter-domain forwarding demonstration (Sec. 5): an 8-domain
    internet of small intra-domain topologies; subscribers spread
    across domains; publications forwarded by IdLId matching with
    intra-domain header swaps at each boundary. *)

val run : ?publications:int -> Format.formatter -> unit
