(** Multicast latency in the time domain: per-subscriber first-copy
    latency of zFilter delivery (hardware fan-out, 3 µs/hop) against an
    application-layer overlay relaying through end hosts — the
    "overlay-based multicast systems are inherently inefficient"
    motivation of Sec. 1, quantified. *)

val run : ?trials:int -> Format.formatter -> unit
