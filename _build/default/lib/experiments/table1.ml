module Metrics = Lipsin_topology.Metrics
module As_presets = Lipsin_topology.As_presets

let run ppf =
  Format.fprintf ppf "Table 1: graph characterization (ours vs paper)@.";
  Format.fprintf ppf
    "%-8s | %5s %6s %4s %4s %9s | %5s %6s %4s %4s %9s@." "AS" "nodes" "links"
    "diam" "rad" "avg(max)" "nodes" "links" "diam" "rad" "avg(max)";
  Format.fprintf ppf "%s@." (String.make 100 '-');
  List.iter2
    (fun (name, graph) spec ->
      let m = Metrics.compute graph in
      Format.fprintf ppf
        "%-8s | %5d %6d %4d %4d %4.0f (%2d)  | %5d %6d %4d %4d %4d (%2d)@."
        name m.Metrics.nodes m.Metrics.edges m.Metrics.diameter
        m.Metrics.radius m.Metrics.avg_degree m.Metrics.max_degree
        spec.As_presets.nodes spec.As_presets.edges spec.As_presets.diameter
        spec.As_presets.radius spec.As_presets.avg_degree
        spec.As_presets.max_degree)
    (As_presets.all ()) As_presets.paper_table1
