(** Variable filter width per packet (the Sec. 4.2 "left for further
    study" design, implemented as {!Lipsin_core.Adaptive}): over a Zipf
    workload, how often each width is chosen and how many header bytes
    the adaptivity saves against fixed m = 248 — without giving up the
    false-positive target. *)

val run : ?topics:int -> Format.formatter -> unit
