(** Lateral error correction (Fig. 1 "more" functions): over a lossy
    fabric, the fraction of subscribers receiving complete windows with
    and without the XOR repair packet, across loss rates. *)

val run : ?windows:int -> Format.formatter -> unit
