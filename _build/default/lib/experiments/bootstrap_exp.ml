module Discovery = Lipsin_bootstrap.Discovery
module Graph = Lipsin_topology.Graph
module Metrics = Lipsin_topology.Metrics
module As_presets = Lipsin_topology.As_presets
module Recovery = Lipsin_forwarding.Recovery

(* A bridge's failure partitions the graph, making full convergence
   impossible by definition; re-convergence is measured on the first
   link that has an alternative path. *)
let first_non_bridge graph =
  let links = Graph.links graph in
  let found = ref None in
  Array.iter
    (fun l ->
      if !found = None && Recovery.backup_path graph ~link:l <> None then
        found := Some l)
    links;
  !found

let run ppf =
  Format.fprintf ppf
    "Topology/rendezvous bootstrap (link-state flooding, synchronous rounds)@.";
  Format.fprintf ppf "%-8s | %5s %5s | %7s %9s | %9s %10s@." "AS" "nodes"
    "diam" "rounds" "messages" "re-rounds" "re-msgs";
  Format.fprintf ppf "%s@." (String.make 72 '-');
  List.iter
    (fun (name, graph) ->
      let m = Metrics.compute graph in
      let d = Discovery.create ~rendezvous:[ 0 ] graph in
      match Discovery.run d with
      | Error e -> Format.fprintf ppf "%-8s | %s@." name e
      | Ok rounds ->
        let baseline_messages = Discovery.messages_sent d in
        let link =
          match first_non_bridge graph with
          | Some l -> l
          | None -> Graph.link graph 0
        in
        Discovery.fail_link d link;
        (match Discovery.run d with
        | Error e -> Format.fprintf ppf "%-8s | %s@." name e
        | Ok re_rounds ->
          Format.fprintf ppf "%-8s | %5d %5d | %7d %9d | %9d %10d@." name
            m.Metrics.nodes m.Metrics.diameter rounds baseline_messages
            re_rounds
            (Discovery.messages_sent d - baseline_messages)))
    (As_presets.all ());
  Format.fprintf ppf
    "(full bootstrap floods O(n) LSAs over O(links); a single link failure@.";
  Format.fprintf ppf " re-floods only the two endpoint LSAs.)@."
