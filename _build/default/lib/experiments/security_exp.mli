(** Security evaluation (Sec. 4.4): contamination vs the fill limit,
    random-probe match rates against the ρ^k prediction, the LIT
    learning attack's observation budget, and the re-keying defence. *)

val run : Format.formatter -> unit
