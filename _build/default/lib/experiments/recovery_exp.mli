(** Fast-recovery evaluation (Sec. 3.3.2): fail each link of sampled
    delivery trees and verify both schemes — VLId-based virtual backup
    paths and zFilter rewriting — restore delivery with zero
    convergence time; report success rates, path stretch and the fill
    increase of the rewrite scheme. *)

val run : ?trials:int -> Format.formatter -> unit
