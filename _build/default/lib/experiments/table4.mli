(** Table 4 reproduction: latency through 0–3 forwarding nodes.

    Two columns per row: the calibrated event-driven model (the paper's
    16 µs end-host cost + 3 µs per NetFPGA) and the actual software
    pipeline measured in-process.  The claim under test is the shape —
    latency is affine in the hop count with a small constant per-hop
    cost — not the absolute microseconds. *)

val run : ?samples:int -> Format.formatter -> unit
