module Rng = Lipsin_util.Rng
module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module As_presets = Lipsin_topology.As_presets
module Adaptive = Lipsin_core.Adaptive
module Candidate = Lipsin_core.Candidate
module Scenario = Lipsin_workload.Scenario

let run ?(topics = 500) ppf =
  let g = As_presets.as6461 () in
  let adaptive = Adaptive.make ~d:8 ~k:5 (Rng.of_int 101) g in
  let config =
    { Scenario.default with Scenario.topics = 20_000; max_subscribers = 32; seed = 103 }
  in
  let loads = Scenario.sample config g ~n:topics in
  let by_width = Hashtbl.create 4 in
  let bytes_adaptive = ref 0 and bytes_fixed = ref 0 and unencodable = ref 0 in
  let fpa_acc = ref 0.0 and chosen = ref 0 in
  Array.iter
    (fun load ->
      let tree =
        Spt.delivery_tree g ~root:load.Scenario.publisher
          ~subscribers:load.Scenario.subscribers
      in
      match Adaptive.choose adaptive ~tree ~target_fpa:0.001 () with
      | None -> incr unencodable
      | Some c ->
        incr chosen;
        Hashtbl.replace by_width c.Adaptive.m
          (1 + Option.value ~default:0 (Hashtbl.find_opt by_width c.Adaptive.m));
        bytes_adaptive := !bytes_adaptive + c.Adaptive.header_bytes;
        bytes_fixed := !bytes_fixed + 36;
        fpa_acc := !fpa_acc +. Candidate.fpa c.Adaptive.candidate)
    loads;
  Format.fprintf ppf
    "Adaptive filter width on AS6461 Zipf workload (%d topics, fpa target 0.1%%)@."
    topics;
  List.iter
    (fun m ->
      let count = Option.value ~default:0 (Hashtbl.find_opt by_width m) in
      Format.fprintf ppf "  m=%3d chosen for %4d topics (%.1f%%), header %d bytes@."
        m count
        (100.0 *. float_of_int count /. float_of_int (max 1 !chosen))
        (5 + ((m + 7) / 8)))
    (Adaptive.widths adaptive);
  Format.fprintf ppf "  undeliverable at any width: %d@." !unencodable;
  Format.fprintf ppf "  mean header: %.1f bytes adaptive vs 36 fixed (%.1f%% saved)@."
    (float_of_int !bytes_adaptive /. float_of_int (max 1 !chosen))
    (100.0 *. (1.0 -. (float_of_int !bytes_adaptive /. float_of_int (max 1 !bytes_fixed))));
  Format.fprintf ppf "  mean predicted fpa of chosen candidates: %.5f@."
    (!fpa_acc /. float_of_int (max 1 !chosen))
