(** Zipf workload accounting (Sec. 4.3): over a Zipf-popularity topic
    population, how many topics are deliverable fully stateless vs the
    popular tail that needs virtual links or multiple sending, and the
    (S,G) router-state bill IP SSM would pay for the same workload. *)

val run : ?topics:int -> Format.formatter -> unit
