module As_presets = Lipsin_topology.As_presets

let run ?(trials = 300) ?(step = 2) ?(csv = false) ppf =
  let graph = As_presets.as6461 () in
  let base = { Trial.default_config with Trial.trials } in
  if csv then
    Format.fprintf ppf "users,std_fpr,fpa_fpr,fpr_fpr,std_eff,fpa_eff,fpr_eff@."
  else begin
    Format.fprintf ppf
      "Figure 5: AS6461, d=8, k=5 — fpr%% and efficiency%% vs users (%d trials)@."
      trials;
    Format.fprintf ppf "%5s | %9s %9s %9s | %9s %9s %9s@." "users" "std fpr"
      "fpa fpr" "fpr fpr" "std eff" "fpa eff" "fpr eff";
    Format.fprintf ppf "%s@." (String.make 72 '-')
  end;
  let users = List.init 16 (fun i -> 2 + (i * step)) in
  List.iter
    (fun u ->
      let std = Trial.run { base with Trial.selection = Trial.Standard } graph ~users:u in
      let fpa = Trial.run { base with Trial.selection = Trial.Fpa } graph ~users:u in
      let fpr = Trial.run { base with Trial.selection = Trial.Fpr } graph ~users:u in
      if csv then
        Format.fprintf ppf "%d,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f@." u
          std.Trial.fpr_mean fpa.Trial.fpr_mean fpr.Trial.fpr_mean
          std.Trial.efficiency_mean fpa.Trial.efficiency_mean
          fpr.Trial.efficiency_mean
      else
        Format.fprintf ppf "%5d | %9.2f %9.2f %9.2f | %9.2f %9.2f %9.2f@." u
          std.Trial.fpr_mean fpa.Trial.fpr_mean fpr.Trial.fpr_mean
          std.Trial.efficiency_mean fpa.Trial.efficiency_mean
          fpr.Trial.efficiency_mean)
    users;
  if not csv then begin
    Format.fprintf ppf
      "(paper shape: all three >99%% efficiency below 10 users; standard@.";
    Format.fprintf ppf
      " drops towards ~60%% at 35 users while fpr-opt stays several points@.";
    Format.fprintf ppf " above fpa-opt, which stays above standard.)@."
  end
