(** Design-choice ablations the paper discusses but does not tabulate:

    - filter width m ∈ {120, 248, 504} (Sec. 4.2: 120 "abandoned due to
      poor performance", 504 "relatively small overall gains" for its
      per-packet cost);
    - number of candidate tables d ∈ {1, 2, 4, 8, 16};
    - the Xcast header-size crossover (Sec. 7). *)

val run : ?trials:int -> Format.formatter -> unit
