module Rng = Lipsin_util.Rng
module Lit = Lipsin_bloom.Lit
module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module As_presets = Lipsin_topology.As_presets
module Assignment = Lipsin_core.Assignment
module Net = Lipsin_sim.Net
module Attacks = Lipsin_security.Attacks

let run ppf =
  let graph = As_presets.as6461 () in
  let assignment = Assignment.make Lit.default (Rng.of_int 17) graph in
  let net = Net.make assignment in
  (* Attack the highest-degree node: the worst case for flooding. *)
  let hub =
    Graph.fold_nodes graph ~init:0 ~f:(fun best v ->
        if Graph.out_degree graph v > Graph.out_degree graph best then v
        else best)
  in
  Format.fprintf ppf "Security (Sec 4.4) on AS6461, hub node degree %d@."
    (Graph.out_degree graph hub);
  Format.fprintf ppf "-- zFilter contamination vs fill limit 0.7:@.";
  Format.fprintf ppf "%6s | %12s | %8s@." "fill" "links match" "dropped";
  let rng = Rng.of_int 31 in
  List.iter
    (fun fill ->
      let o = Attacks.contamination net ~node:hub ~fill ~rng in
      Format.fprintf ppf "%6.2f | %6d/%-5d | %8b@." o.Attacks.fill
        o.Attacks.links_matched o.Attacks.total_links o.Attacks.dropped_by_limit)
    [ 0.2; 0.4; 0.6; 0.7; 0.8; 0.95; 1.0 ];
  Format.fprintf ppf "-- random probe match rate vs rho^k prediction (k=5):@.";
  List.iter
    (fun fill ->
      let measured = Attacks.random_probe_match_rate assignment ~fill ~trials:20 ~rng in
      Format.fprintf ppf "  rho=%.2f  measured=%.5f  rho^k=%.5f@." fill measured
        (fill ** 5.0))
    [ 0.3; 0.5; 0.7 ];
  Format.fprintf ppf "-- LIT learning attack (AND of observed zFilters):@.";
  let uplink = List.hd (Graph.out_links graph hub) in
  List.iter
    (fun n ->
      let o = Attacks.lit_learning assignment ~uplink ~table:0 ~observations:n ~rng in
      Format.fprintf ppf "  observations=%3d  exact=%b  surplus_bits=%d@." n
        o.Attacks.inferred_exactly o.Attacks.surplus_bits)
    [ 1; 2; 4; 8; 16; 32 ];
  let defended = Attacks.rekey_defeats_learning assignment ~uplink ~table:0 ~rng in
  Format.fprintf ppf "-- re-keying the uplink defeats the learned tag: %b@." defended;
  (* zFilter re-use: how long does a stolen filter stay useful? *)
  let tree = Lipsin_topology.Spt.delivery_tree graph ~root:hub ~subscribers:[ 0; 1 ] in
  let stolen =
    (Lipsin_core.Candidate.build_one assignment ~tree ~table:0)
      .Lipsin_core.Candidate.zfilter
  in
  let rekeyed = Lipsin_core.Assignment.rekey assignment (Rng.of_int 43) in
  Format.fprintf ppf
    "-- zFilter re-use: stolen filter reaches %.0f%% of its tree at capture,@."
    (100.0 *. Attacks.replay_reach assignment ~zfilter:stolen ~tree);
  Format.fprintf ppf "   %.0f%% after the periodic Link ID change (Sec 4.4)@."
    (100.0 *. Attacks.replay_reach rekeyed ~zfilter:stolen ~tree)
