module Rng = Lipsin_util.Rng
module Bitvec = Lipsin_bitvec.Bitvec
module Lit = Lipsin_bloom.Lit
module Zfilter = Lipsin_bloom.Zfilter
module Graph = Lipsin_topology.Graph
module Assignment = Lipsin_core.Assignment
module Net = Lipsin_sim.Net
module Node_engine = Lipsin_forwarding.Node_engine

let random_filter ~m ~fill rng =
  let target = int_of_float (fill *. float_of_int m) in
  let positions = Rng.sample rng (min m target) m in
  Zfilter.of_bitvec (Bitvec.of_positions m (Array.to_list positions))

type contamination_outcome = {
  fill : float;
  links_matched : int;
  total_links : int;
  dropped_by_limit : bool;
}

let contamination net ~node ~fill ~rng =
  let assignment = Net.assignment net in
  let params = Assignment.params assignment in
  let attack = random_filter ~m:params.Lit.m ~fill rng in
  let graph = Net.graph net in
  let out = Graph.out_links graph node in
  (* Raw Algorithm 1, as if no fill limit existed. *)
  let links_matched =
    List.length
      (List.filter
         (fun l ->
           Zfilter.matches attack ~lit:(Assignment.tag assignment l ~table:0))
         out)
  in
  let verdict =
    Node_engine.forward (Net.engine net node) ~table:0 ~zfilter:attack
      ~in_link:None
  in
  {
    fill = Zfilter.fill_factor attack;
    links_matched;
    total_links = List.length out;
    dropped_by_limit =
      verdict.Node_engine.drop = Some Node_engine.Fill_limit_exceeded;
  }

let random_probe_match_rate assignment ~fill ~trials ~rng =
  let params = Assignment.params assignment in
  let graph = Assignment.graph assignment in
  let links = Graph.links graph in
  let matched = ref 0 and tested = ref 0 in
  for _ = 1 to trials do
    let probe = random_filter ~m:params.Lit.m ~fill rng in
    Array.iter
      (fun l ->
        incr tested;
        if Zfilter.matches probe ~lit:(Assignment.tag assignment l ~table:0) then
          incr matched)
      links
  done;
  if !tested = 0 then 0.0 else float_of_int !matched /. float_of_int !tested

type learning_outcome = {
  observations : int;
  inferred_exactly : bool;
  surplus_bits : int;
}

(* One legitimate zFilter through the uplink: its LIT ORed with those
   of a handful of other random links (the rest of some delivery
   tree). *)
let observed_zfilter assignment ~uplink ~table rng =
  let params = Assignment.params assignment in
  let graph = Assignment.graph assignment in
  let links = Graph.links graph in
  let z = Zfilter.create ~m:params.Lit.m in
  Zfilter.add z (Assignment.tag assignment uplink ~table);
  let extra = 1 + Rng.int rng 8 in
  for _ = 1 to extra do
    let l = links.(Rng.int rng (Array.length links)) in
    Zfilter.add z (Assignment.tag assignment l ~table)
  done;
  z

let lit_learning assignment ~uplink ~table ~observations ~rng =
  if observations <= 0 then invalid_arg "Attacks.lit_learning: need observations";
  let acc =
    ref (Zfilter.to_bitvec (observed_zfilter assignment ~uplink ~table rng))
  in
  for _ = 2 to observations do
    let z = observed_zfilter assignment ~uplink ~table rng in
    acc := Bitvec.logand !acc (Zfilter.to_bitvec z)
  done;
  let true_lit = Assignment.tag assignment uplink ~table in
  let surplus = Bitvec.popcount !acc - Bitvec.popcount true_lit in
  {
    observations;
    inferred_exactly = Bitvec.equal !acc true_lit;
    surplus_bits = max 0 surplus;
  }

let replay_reach assignment ~zfilter ~tree =
  match tree with
  | [] -> 0.0
  | _ ->
    let matched =
      List.length
        (List.filter
           (fun l ->
             Zfilter.matches zfilter ~lit:(Assignment.tag assignment l ~table:0))
           tree)
    in
    float_of_int matched /. float_of_int (List.length tree)

let rekey_defeats_learning assignment ~uplink ~table ~rng =
  let stolen_tag = Assignment.tag assignment uplink ~table in
  let rekeyed = Assignment.rekey_link assignment uplink rng in
  let params = Assignment.params rekeyed in
  (* A fresh legitimate zFilter that traverses the uplink under the new
     keys... *)
  let z = Zfilter.create ~m:params.Lit.m in
  Zfilter.add z (Assignment.tag rekeyed uplink ~table);
  (* ...no longer matches the tag the attacker learned. *)
  not (Zfilter.matches z ~lit:stolen_tag)
