lib/security/attacks.mli: Lipsin_bloom Lipsin_core Lipsin_sim Lipsin_topology Lipsin_util
