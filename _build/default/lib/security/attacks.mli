(** Attack models and defences (Sec. 4.4).

    Three attacks the paper analyses, each with its measured defence:

    - {b zFilter contamination}: inject filters dense in 1s so they
      match (almost) every link.  Defence: the forwarding-node fill
      limit.
    - {b random probing}: guess zFilters without topology knowledge;
      a ρ-full random filter matches a k-bit LIT with probability
      ≈ ρ^k.
    - {b LIT learning}: a publisher collects many valid zFilters
      rooted at itself and ANDs them to recover its uplinks' LITs.
      Defences: re-keying the uplink Link IDs, and varying candidate
      selection. *)

type contamination_outcome = {
  fill : float;
  links_matched : int;      (** Out-links the attack filter matches. *)
  total_links : int;
  dropped_by_limit : bool;  (** The engine discarded the packet. *)
}

val contamination :
  Lipsin_sim.Net.t ->
  node:Lipsin_topology.Graph.node ->
  fill:float ->
  rng:Lipsin_util.Rng.t ->
  contamination_outcome
(** Builds a random filter of the given fill factor, presents it to the
    node's engine and reports what would have been flooded.
    [links_matched] is counted against raw Algorithm 1 (no fill
    limit); [dropped_by_limit] tells whether the engine's limit
    stopped it. *)

val random_probe_match_rate :
  Lipsin_core.Assignment.t -> fill:float -> trials:int -> rng:Lipsin_util.Rng.t -> float
(** Fraction of (random ρ-full filter, link) pairs that match across
    the whole assignment — empirically ≈ ρ^k. *)

type learning_outcome = {
  observations : int;
  inferred_exactly : bool;
      (** The AND of observed zFilters equals the uplink's LIT — the
          attacker has the usable tag. *)
  surplus_bits : int;
      (** Extra bits in the AND beyond the true LIT (0 = exact). *)
}

val lit_learning :
  Lipsin_core.Assignment.t ->
  uplink:Lipsin_topology.Graph.link ->
  table:int ->
  observations:int ->
  rng:Lipsin_util.Rng.t ->
  learning_outcome
(** Simulates an attacker observing [observations] legitimate zFilters
    that all traverse [uplink] (random 1–8 extra tree links each) and
    ANDing them. *)

val replay_reach :
  Lipsin_core.Assignment.t ->
  zfilter:Lipsin_bloom.Zfilter.t ->
  tree:Lipsin_topology.Graph.link list ->
  float
(** The zFilter re-use attack's payoff: the fraction of the original
    tree's links a replayed (possibly stolen) filter still matches
    under the given assignment.  1.0 right after capture; ~0.0 after
    {!Lipsin_core.Assignment.rekey} or an epoch change
    ({!Lipsin_core.Rotation}). *)

val rekey_defeats_learning :
  Lipsin_core.Assignment.t ->
  uplink:Lipsin_topology.Graph.link ->
  table:int ->
  rng:Lipsin_util.Rng.t ->
  bool
(** After {!Lipsin_core.Assignment.rekey_link}, does a tag inferred
    from the old assignment still match a zFilter built from the new
    one?  [true] when the defence works (it no longer matches). *)
