lib/bitvec/bitvec.ml: Array Buffer Bytes Char Format Hashtbl Int64 List Printf Stdlib String
