lib/bitvec/bitvec.mli: Format
