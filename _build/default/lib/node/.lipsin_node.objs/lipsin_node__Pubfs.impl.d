lib/node/pubfs.ml: Hashtbl List String
