lib/node/pubfs.mli:
