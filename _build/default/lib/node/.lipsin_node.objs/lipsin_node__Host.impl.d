lib/node/host.ml: Hashtbl Lipsin_pubsub Lipsin_sim Lipsin_topology List Pubfs Queue
