lib/node/host.mli: Lipsin_pubsub Lipsin_topology Pubfs
