(** The publication filesystem (Sec. 6.1).

    The FreeBSD prototype backs every publication with "a virtual file,
    located in a separate virtual file system running under FUSE":
    creating a publication reserves a named memory area, publishing
    snapshots it, and received publications land in the same store.
    This is that store — an in-memory versioned file tree. *)

type t

val create : ?history_limit:int -> unit -> t
(** [history_limit] bounds retained versions per file (default 16,
    oldest dropped first).  @raise Invalid_argument if < 1. *)

val write : t -> path:string -> string -> int
(** Appends a new version; returns its (1-based) version number. *)

val read : t -> path:string -> string option
(** Newest version. *)

val read_version : t -> path:string -> version:int -> string option
(** A specific retained version; [None] if dropped or never written. *)

val version : t -> path:string -> int
(** Newest version number; 0 when the file does not exist. *)

val exists : t -> path:string -> bool

val remove : t -> path:string -> bool
(** [true] if the file existed. *)

val list : t -> ?prefix:string -> unit -> string list
(** Paths, sorted; [prefix] filters (e.g. ["/pub/"]). *)
