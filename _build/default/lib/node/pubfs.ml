type file = {
  mutable newest : int;  (* version number of the head *)
  (* (version, content), newest first, length <= history_limit *)
  mutable versions : (int * string) list;
}

type t = { history_limit : int; files : (string, file) Hashtbl.t }

let create ?(history_limit = 16) () =
  if history_limit < 1 then invalid_arg "Pubfs.create: history_limit must be >= 1";
  { history_limit; files = Hashtbl.create 64 }

let write t ~path content =
  let file =
    match Hashtbl.find_opt t.files path with
    | Some f -> f
    | None ->
      let f = { newest = 0; versions = [] } in
      Hashtbl.replace t.files path f;
      f
  in
  file.newest <- file.newest + 1;
  let keep = List.filteri (fun i _ -> i < t.history_limit - 1) file.versions in
  file.versions <- (file.newest, content) :: keep;
  file.newest

let read t ~path =
  match Hashtbl.find_opt t.files path with
  | Some { versions = (_, content) :: _; _ } -> Some content
  | Some { versions = []; _ } | None -> None

let read_version t ~path ~version =
  match Hashtbl.find_opt t.files path with
  | None -> None
  | Some file -> List.assoc_opt version file.versions

let version t ~path =
  match Hashtbl.find_opt t.files path with Some f -> f.newest | None -> 0

let exists t ~path = Hashtbl.mem t.files path

let remove t ~path =
  let existed = Hashtbl.mem t.files path in
  Hashtbl.remove t.files path;
  existed

let list t ?(prefix = "") () =
  Hashtbl.fold
    (fun path _ acc ->
      if String.starts_with ~prefix path then path :: acc else acc)
    t.files []
  |> List.sort compare
