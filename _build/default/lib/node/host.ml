module Graph = Lipsin_topology.Graph
module System = Lipsin_pubsub.System
module Topic = Lipsin_pubsub.Topic
module Run = Lipsin_sim.Run

type event = { topic : Topic.t; name : string; payload : string }

type endpoint = {
  node : Graph.node;
  fs : Pubfs.t;
  mailbox : event Queue.t;
  cluster : cluster;
}

and cluster = {
  system : System.t;
  endpoints : (Graph.node, endpoint) Hashtbl.t;
  (* topic id -> human name, so receivers can file payloads by name *)
  names : (int64, string) Hashtbl.t;
}

let create_cluster ?selection ?seed graph =
  let system =
    match (selection, seed) with
    | Some selection, Some seed -> System.create ~selection ~seed graph
    | Some selection, None -> System.create ~selection graph
    | None, Some seed -> System.create ~seed graph
    | None, None -> System.create graph
  in
  { system; endpoints = Hashtbl.create 32; names = Hashtbl.create 64 }

let system cluster = cluster.system

let endpoint cluster node =
  match Hashtbl.find_opt cluster.endpoints node with
  | Some e -> e
  | None ->
    let graph = System.graph cluster.system in
    if node < 0 || node >= Graph.node_count graph then
      invalid_arg "Host.endpoint: node out of range";
    let e = { node; fs = Pubfs.create (); mailbox = Queue.create (); cluster } in
    Hashtbl.replace cluster.endpoints node e;
    e

let node e = e.node
let fs e = e.fs

let pub_path name = "/pub/" ^ name
let net_path name = "/net/" ^ name

let register_name cluster topic name =
  Hashtbl.replace cluster.names (Topic.id topic) name

let create_publication e ~name ~content =
  let topic = Topic.of_string name in
  ignore (Pubfs.write e.fs ~path:(pub_path name) content);
  register_name e.cluster topic name;
  System.advertise e.cluster.system topic ~publisher:e.node;
  topic

let update_publication e ~name ~content =
  if not (Pubfs.exists e.fs ~path:(pub_path name)) then
    invalid_arg "Host.update_publication: publication was never created";
  ignore (Pubfs.write e.fs ~path:(pub_path name) content)

let subscribe e ~name =
  let topic = Topic.of_string name in
  register_name e.cluster topic name;
  System.subscribe e.cluster.system topic ~subscriber:e.node;
  topic

let unsubscribe e ~name =
  System.unsubscribe e.cluster.system (Topic.of_string name) ~subscriber:e.node

type delivery = {
  topic : Topic.t;
  delivered_to : Graph.node list;
  missed : Graph.node list;
  link_traversals : int;
}

let publish e ~name =
  match Pubfs.read e.fs ~path:(pub_path name) with
  | None -> Error "publication was never created at this host"
  | Some payload -> (
    let topic = Topic.of_string name in
    match System.publish e.cluster.system topic ~publisher:e.node ~payload with
    | Error err -> Error err
    | Ok r ->
      (* Hand the payload to every host the fabric reached. *)
      List.iter
        (fun subscriber ->
          let receiver = endpoint e.cluster subscriber in
          ignore (Pubfs.write receiver.fs ~path:(net_path name) payload);
          Queue.add { topic; name; payload } receiver.mailbox)
        r.System.delivered_to;
      Ok
        {
          topic;
          delivered_to = r.System.delivered_to;
          missed = r.System.missed;
          link_traversals = r.System.outcome.Run.link_traversals;
        })

let poll e =
  let events = List.of_seq (Queue.to_seq e.mailbox) in
  Queue.clear e.mailbox;
  events

let read_received e ~name = Pubfs.read e.fs ~path:(net_path name)
