(** End-node hosts over the pub/sub fabric (Sec. 6.1).

    Mirrors the FreeBSD end-node prototype's structure: each host owns
    a {!Pubfs} (its publications and received data, each backed by a
    virtual file) and an event mailbox; the I/O-module system calls —
    create, publish, subscribe — map to the functions below.  A
    {!cluster} binds the hosts of one network to a shared
    {!Lipsin_pubsub.System}. *)

type cluster
type endpoint

val create_cluster :
  ?selection:Lipsin_pubsub.System.selection ->
  ?seed:int ->
  Lipsin_topology.Graph.t ->
  cluster

val system : cluster -> Lipsin_pubsub.System.t

val endpoint : cluster -> Lipsin_topology.Graph.node -> endpoint
(** The host attached at a node (created on first use; one per node). *)

val node : endpoint -> Lipsin_topology.Graph.node
val fs : endpoint -> Pubfs.t

val create_publication :
  endpoint -> name:string -> content:string -> Lipsin_pubsub.Topic.t
(** Reserves the memory area (a [/pub/<name>] file), advertises the
    topic, returns its id.  Re-creating overwrites the content. *)

val update_publication : endpoint -> name:string -> content:string -> unit
(** New version of the backing file; does not send anything.
    @raise Invalid_argument if the publication was never created. *)

val subscribe : endpoint -> name:string -> Lipsin_pubsub.Topic.t
(** Registers interest in the topic of [name]. *)

val unsubscribe : endpoint -> name:string -> unit

type delivery = {
  topic : Lipsin_pubsub.Topic.t;
  delivered_to : Lipsin_topology.Graph.node list;
  missed : Lipsin_topology.Graph.node list;
  link_traversals : int;
}

val publish : endpoint -> name:string -> (delivery, string) result
(** Snapshots the publication's current content and disseminates it:
    every subscribed host that the fabric reaches stores the payload
    under [/net/<name>] in its own Pubfs and queues a mailbox event. *)

type event = { topic : Lipsin_pubsub.Topic.t; name : string; payload : string }

val poll : endpoint -> event list
(** Drains the mailbox (oldest first). *)

val read_received : endpoint -> name:string -> string option
(** Newest received payload for a topic name ([/net/<name>]). *)
