lib/fec/xor_code.ml: Bytes Char Hashtbl List String
