lib/fec/lateral.ml: Array Lipsin_sim Lipsin_topology List Xor_code
