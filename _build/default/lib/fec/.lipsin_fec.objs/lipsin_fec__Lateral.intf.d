lib/fec/lateral.mli: Lipsin_bloom Lipsin_sim Lipsin_topology
