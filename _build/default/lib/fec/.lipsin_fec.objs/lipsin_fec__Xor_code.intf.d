lib/fec/xor_code.mli:
