(* Frame = 4-byte big-endian length + payload, zero-padded to the
   window maximum; XOR of frames is associative/commutative, so the
   repair equals the XOR of all frames and any single frame equals the
   XOR of the repair with the others. *)

let frame_length payload = 4 + String.length payload

let write_frame buf payload =
  let n = String.length payload in
  Bytes.set buf 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set buf 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set buf 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set buf 3 (Char.chr (n land 0xff));
  Bytes.blit_string payload 0 buf 4 n

let xor_into ~dst src =
  for i = 0 to Bytes.length src - 1 do
    Bytes.set dst i
      (Char.chr (Char.code (Bytes.get dst i) lxor Char.code (Bytes.get src i)))
  done

let frames_xor width payloads =
  let acc = Bytes.make width '\000' in
  let tmp = Bytes.make width '\000' in
  List.iter
    (fun payload ->
      Bytes.fill tmp 0 width '\000';
      write_frame tmp payload;
      xor_into ~dst:acc tmp)
    payloads;
  acc

let repair payloads =
  if payloads = [] then invalid_arg "Xor_code.repair: empty window";
  let width =
    List.fold_left (fun acc p -> max acc (frame_length p)) 0 payloads
  in
  Bytes.to_string (frames_xor width payloads)

let parse_frame bytes =
  let len =
    (Char.code (Bytes.get bytes 0) lsl 24)
    lor (Char.code (Bytes.get bytes 1) lsl 16)
    lor (Char.code (Bytes.get bytes 2) lsl 8)
    lor Char.code (Bytes.get bytes 3)
  in
  if len + 4 > Bytes.length bytes then
    invalid_arg "Xor_code: repair frame inconsistent with received payloads";
  Bytes.sub_string bytes 4 len

let recover ~window_size ~received ~repair =
  if window_size <= 0 then invalid_arg "Xor_code.recover: window_size <= 0";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (i, _) ->
      if i < 0 || i >= window_size then
        invalid_arg "Xor_code.recover: index out of range";
      if Hashtbl.mem seen i then invalid_arg "Xor_code.recover: duplicate index";
      Hashtbl.replace seen i ())
    received;
  if List.length received = window_size then None
  else if List.length received < window_size - 1 then None
  else begin
    let missing = ref (-1) in
    for i = 0 to window_size - 1 do
      if not (Hashtbl.mem seen i) then missing := i
    done;
    let width = String.length repair in
    (* Padding with shorter frames is fine; a longer frame than the
       repair means corruption or a foreign window. *)
    List.iter
      (fun (_, p) ->
        if frame_length p > width then
          invalid_arg "Xor_code: repair frame inconsistent with received payloads")
      received;
    let acc = Bytes.of_string repair in
    xor_into ~dst:acc (frames_xor width (List.map snd received));
    Some (!missing, parse_frame acc)
  end

let verify payloads ~repair:r = String.equal (repair payloads) r
