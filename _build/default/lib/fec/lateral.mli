(** Lateral error correction over the (lossy) fabric.

    The sender multicasts a window of W data packets followed by one
    XOR repair packet over the same delivery tree; each subscriber
    recovers a single lost data packet locally from the repair, without
    any retransmission round-trip to the publisher. *)

type subscriber_report = {
  node : Lipsin_topology.Graph.node;
  received : int;   (** Data packets that arrived directly. *)
  recovered : int;  (** 0 or 1: restored from the repair packet. *)
  missing : int;    (** Still missing after repair. *)
}

type report = {
  window_size : int;
  subscribers : subscriber_report list;
  complete_without_fec : int;  (** Subscribers needing no repair. *)
  complete_with_fec : int;     (** Subscribers whole after repair. *)
}

val send_window :
  Lipsin_sim.Net.t ->
  src:Lipsin_topology.Graph.node ->
  table:int ->
  zfilter:Lipsin_bloom.Zfilter.t ->
  tree:Lipsin_topology.Graph.link list ->
  subscribers:Lipsin_topology.Graph.node list ->
  window:string list ->
  loss:Lipsin_sim.Run.loss ->
  report
(** Delivers every data packet and the repair packet as independent
    simulated publications under the loss model, then runs recovery at
    each subscriber.  @raise Invalid_argument on an empty window. *)
