module Graph = Lipsin_topology.Graph
module Net = Lipsin_sim.Net
module Run = Lipsin_sim.Run

type subscriber_report = {
  node : Graph.node;
  received : int;
  recovered : int;
  missing : int;
}

type report = {
  window_size : int;
  subscribers : subscriber_report list;
  complete_without_fec : int;
  complete_with_fec : int;
}

let send_window net ~src ~table ~zfilter ~tree ~subscribers ~window ~loss =
  if window = [] then invalid_arg "Lateral.send_window: empty window";
  let window_size = List.length window in
  (* One simulated delivery per packet: W data + 1 repair. *)
  let outcomes =
    List.map
      (fun _payload -> Run.deliver ~loss net ~src ~table ~zfilter ~tree)
      window
  in
  let repair_outcome = Run.deliver ~loss net ~src ~table ~zfilter ~tree in
  let repair_frame = Xor_code.repair window in
  let indexed = List.mapi (fun i payload -> (i, payload)) window in
  let per_subscriber node =
    let received =
      List.concat
        (List.map2
           (fun (i, payload) outcome ->
             if outcome.Run.reached.(node) then [ (i, payload) ] else [])
           indexed outcomes)
    in
    let got_repair = repair_outcome.Run.reached.(node) in
    let received_count = List.length received in
    let recovered =
      if received_count = window_size || not got_repair then 0
      else
        match
          Xor_code.recover ~window_size ~received ~repair:repair_frame
        with
        | Some _ -> 1
        | None -> 0
    in
    {
      node;
      received = received_count;
      recovered;
      missing = window_size - received_count - recovered;
    }
  in
  let reports = List.map per_subscriber subscribers in
  {
    window_size;
    subscribers = reports;
    complete_without_fec =
      List.length (List.filter (fun r -> r.received = window_size) reports);
    complete_with_fec =
      List.length (List.filter (fun r -> r.missing = 0) reports);
  }
