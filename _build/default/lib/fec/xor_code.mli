(** XOR parity coding for lateral error correction.

    The architecture's data plane envisions "lateral error correction"
    (Fig. 1, citing Ricochet): alongside every window of W data packets
    the sender emits one repair packet, the XOR of the window, letting
    a receiver reconstruct any single lost packet without contacting
    the publisher.

    Payloads may differ in length: each is framed as a 32-bit length
    prefix plus its bytes, zero-padded to the window's longest frame
    before XOR, so recovery restores the exact original payload. *)

val repair : string list -> string
(** The repair frame for a window of payloads.
    @raise Invalid_argument on an empty window. *)

val recover :
  window_size:int ->
  received:(int * string) list ->
  repair:string ->
  (int * string) option
(** [recover ~window_size ~received ~repair] reconstructs the one
    missing (index, payload) when exactly [window_size - 1] distinct
    indexes in \[0, window_size) were received; [None] when nothing is
    missing or more than one packet was lost (XOR parity cannot fix
    multi-loss).
    @raise Invalid_argument on out-of-range or duplicate indexes, or a
    repair frame inconsistent with the received payloads. *)

val verify : string list -> repair:string -> bool
(** Does the repair frame match the window (no corruption)? *)
