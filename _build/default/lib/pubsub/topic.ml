module Rng = Lipsin_util.Rng

type t = int64

let of_string name =
  (* Fold the name through the SplitMix64 mixer 8 bytes at a time; a
     simple, dependency-free stable hash with good diffusion. *)
  let acc = ref 0x7097_5EED_0000_0001L in
  String.iteri
    (fun i c ->
      acc :=
        Rng.mix64
          (Int64.logxor !acc
             (Int64.of_int ((Char.code c lsl (8 * (i mod 7))) + i))))
    name;
  Rng.mix64 !acc

let of_id id = id
let id t = t
let equal = Int64.equal
let compare = Int64.compare
let hash t = Int64.to_int t land max_int
let pp ppf t = Format.fprintf ppf "topic:%Lx" t

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
