module Graph = Lipsin_topology.Graph

type path = string list

let validate_component c =
  if c = "" || String.contains c '/' then
    invalid_arg "Scope: path components must be non-empty and '/'-free"

let to_string path = "/" ^ String.concat "/" path

let topic_of_path path =
  if path = [] then invalid_arg "Scope.topic_of_path: empty path";
  List.iter validate_component path;
  Topic.of_string (to_string path)

let parse s =
  if s = "" then invalid_arg "Scope.parse: empty string";
  let parts = String.split_on_char '/' s in
  let parts = List.filter (fun p -> p <> "") parts in
  if parts = [] then invalid_arg "Scope.parse: no components";
  List.iter validate_component parts;
  parts

module Node_set = Set.Make (Int)

type scope_node = {
  mutable children : (string * scope_node) list;
  mutable is_topic : bool;
  mutable subscribers : Node_set.t;
}

type t = { root : scope_node }

let fresh_node () =
  { children = []; is_topic = false; subscribers = Node_set.empty }

let create () = { root = fresh_node () }

let rec descend node ~create_missing = function
  | [] -> Some node
  | component :: rest -> (
    validate_component component;
    match List.assoc_opt component node.children with
    | Some child -> descend child ~create_missing rest
    | None ->
      if create_missing then begin
        let child = fresh_node () in
        node.children <- (component, child) :: node.children;
        descend child ~create_missing rest
      end
      else None)

let declare t path =
  let topic = topic_of_path path in
  (match descend t.root ~create_missing:true path with
  | Some node -> node.is_topic <- true
  | None -> assert false);
  topic

let subscribe_scope t path ~subscriber =
  match descend t.root ~create_missing:true path with
  | Some node -> node.subscribers <- Node_set.add subscriber node.subscribers
  | None -> assert false

let unsubscribe_scope t path ~subscriber =
  match descend t.root ~create_missing:false path with
  | Some node -> node.subscribers <- Node_set.remove subscriber node.subscribers
  | None -> ()

let subscribers_of t path =
  List.iter validate_component path;
  let rec walk node acc = function
    | [] -> Node_set.union acc node.subscribers
    | component :: rest -> (
      let acc = Node_set.union acc node.subscribers in
      match List.assoc_opt component node.children with
      | Some child -> walk child acc rest
      | None -> acc)
  in
  Node_set.elements (walk t.root Node_set.empty path)

let topics_under t path =
  match descend t.root ~create_missing:false path with
  | None -> []
  | Some start ->
    let acc = ref [] in
    let rec collect node prefix =
      if node.is_topic then acc := List.rev prefix :: !acc;
      List.iter
        (fun (name, child) -> collect child (name :: prefix))
        node.children
    in
    collect start (List.rev path);
    List.sort compare !acc

let sync_rendezvous t rendezvous =
  List.iter
    (fun topic_path ->
      let topic = topic_of_path topic_path in
      List.iter
        (fun subscriber -> Rendezvous.subscribe rendezvous topic ~subscriber)
        (subscribers_of t topic_path))
    (topics_under t [])
