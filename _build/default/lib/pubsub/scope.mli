(** Hierarchical rendezvous scopes.

    The rendezvous architecture LIPSIN plugs into (PSIRP/RTFM, the
    paper's refs [32, 39, 41]) organises topics under nested *scopes* —
    information namespaces like [/sports/football/scores].  A
    subscription to a scope covers every topic at or below it, present
    and future.  This module maps scope paths onto the flat topic ids
    the forwarding layer uses, and expands scope subscriptions into the
    per-topic subscriptions {!Rendezvous} tracks. *)

type path = string list
(** E.g. [["sports"; "football"; "scores"]].  Components must be
    non-empty and must not contain ['/']. *)

val topic_of_path : path -> Topic.t
(** Deterministic topic id for the path itself.
    @raise Invalid_argument on an empty or malformed path. *)

val parse : string -> path
(** ["/sports/football"] → [["sports"; "football"]].
    @raise Invalid_argument on empty input or empty components. *)

val to_string : path -> string

type t
(** A scope tree tracking which topic paths exist and who subscribes at
    which scope. *)

val create : unit -> t

val declare : t -> path -> Topic.t
(** Registers a topic path (creating intermediate scopes) and returns
    its flat topic id.  Idempotent. *)

val subscribe_scope : t -> path -> subscriber:Lipsin_topology.Graph.node -> unit
(** Subscribes at a scope: covers all current AND future topics under
    it (the root path [[]] is allowed and covers everything). *)

val unsubscribe_scope : t -> path -> subscriber:Lipsin_topology.Graph.node -> unit

val subscribers_of : t -> path -> Lipsin_topology.Graph.node list
(** Everyone whose scope subscription covers the given topic path
    (sorted, deduplicated): subscribers at the path itself or at any
    ancestor scope. *)

val topics_under : t -> path -> path list
(** Declared topic paths at or below a scope, sorted. *)

val sync_rendezvous : t -> Rendezvous.t -> unit
(** Expands the scope tree into the flat per-topic subscriptions the
    forwarding layer consumes: for every declared topic, every covering
    subscriber is subscribed to its flat topic id.  Idempotent; newly
    declared topics and new scope subscriptions appear on the next
    sync. *)
