lib/pubsub/scope.mli: Lipsin_topology Rendezvous Topic
