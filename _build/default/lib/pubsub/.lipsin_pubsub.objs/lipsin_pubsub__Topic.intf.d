lib/pubsub/topic.mli: Format Hashtbl
