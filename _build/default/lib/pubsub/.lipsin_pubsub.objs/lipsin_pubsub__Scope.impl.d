lib/pubsub/scope.ml: Int Lipsin_topology List Rendezvous Set String Topic
