lib/pubsub/rendezvous.mli: Lipsin_topology Topic
