lib/pubsub/system.ml: Array Hashtbl Int64 Lipsin_bloom Lipsin_core Lipsin_packet Lipsin_sim Lipsin_topology Lipsin_util List Rendezvous Topic
