lib/pubsub/system.mli: Lipsin_bloom Lipsin_core Lipsin_packet Lipsin_sim Lipsin_topology Rendezvous Topic
