lib/pubsub/rendezvous.ml: Int Lipsin_topology Set Topic
