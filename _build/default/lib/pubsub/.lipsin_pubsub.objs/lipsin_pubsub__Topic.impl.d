lib/pubsub/topic.ml: Char Format Hashtbl Int64 Lipsin_util String
