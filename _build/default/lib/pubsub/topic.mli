(** Topic identifiers.

    Topics are the rendezvous names of the architecture (Sec. 2.1): a
    publication is named by a topic, and the rendezvous system matches
    publishers and subscribers per topic.  A topic id is a 64-bit value
    derived from a human-readable name by hashing, mirroring the flat,
    location-independent data naming the paper advocates. *)

type t

val of_string : string -> t
(** Deterministic id for a topic name. *)

val of_id : int64 -> t
val id : t -> int64

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Table : Hashtbl.S with type key = t
