module Rng = Lipsin_util.Rng
module Lit = Lipsin_bloom.Lit
module Zfilter = Lipsin_bloom.Zfilter
module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module Assignment = Lipsin_core.Assignment
module Candidate = Lipsin_core.Candidate
module Select = Lipsin_core.Select
module Net = Lipsin_sim.Net
module Run = Lipsin_sim.Run
module Header = Lipsin_packet.Header

type selection = Standard | Fpa | Fpr | Avoid of Graph.link list

type cache_entry = {
  generation : int;
  table : int;
  zfilter : Zfilter.t;
  tree : Graph.link list;
}

type t = {
  graph : Graph.t;
  assignment : Assignment.t;
  net : Net.t;
  rendezvous : Rendezvous.t;
  selection : selection;
  fill_limit : float;
  cache : (Int64.t * int, cache_entry) Hashtbl.t;  (* (topic id, publisher) *)
}

let create ?(params = Lit.default) ?(selection = Fpa) ?(fill_limit = 0.7)
    ?(seed = 1) graph =
  let assignment = Assignment.make params (Rng.of_int seed) graph in
  {
    graph;
    assignment;
    net = Net.make ~fill_limit assignment;
    rendezvous = Rendezvous.create ();
    selection;
    fill_limit;
    cache = Hashtbl.create 64;
  }

let graph t = t.graph
let assignment t = t.assignment
let net t = t.net
let rendezvous t = t.rendezvous

let advertise t topic ~publisher = Rendezvous.advertise t.rendezvous topic ~publisher
let subscribe t topic ~subscriber = Rendezvous.subscribe t.rendezvous topic ~subscriber

let unsubscribe t topic ~subscriber =
  Rendezvous.unsubscribe t.rendezvous topic ~subscriber

type publish_result = {
  header : Header.t;
  tree : Graph.link list;
  outcome : Run.outcome;
  delivered_to : Graph.node list;
  missed : Graph.node list;
  from_cache : bool;
}

let select t candidates ~tree =
  match t.selection with
  | Standard ->
    let c = Select.standard candidates in
    if Candidate.fill_factor c <= t.fill_limit then Some c else None
  | Fpa -> Select.select_fpa ~fill_limit:t.fill_limit candidates
  | Fpr ->
    let test = Select.default_test_set t.assignment ~tree in
    Select.select_fpr ~fill_limit:t.fill_limit t.assignment candidates ~test
  | Avoid links ->
    let test = Select.default_test_set t.assignment ~tree in
    Select.select_weighted ~fill_limit:t.fill_limit t.assignment candidates ~test
      ~weight:(Select.avoid_set links)

let forwarding_info t topic ~publisher ~subscribers =
  let key = (Topic.id topic, publisher) in
  let generation = Rendezvous.generation t.rendezvous topic in
  match Hashtbl.find_opt t.cache key with
  | Some entry when entry.generation = generation ->
    Ok (entry.table, entry.zfilter, entry.tree, true)
  | Some _ | None ->
    let tree = Spt.delivery_tree t.graph ~root:publisher ~subscribers in
    if tree = [] then Error "delivery tree is empty"
    else begin
      let candidates = Candidate.build t.assignment ~tree in
      match select t candidates ~tree with
      | None -> Error "every candidate zFilter exceeds the fill limit"
      | Some c ->
        Hashtbl.replace t.cache key
          {
            generation;
            table = c.Candidate.table;
            zfilter = c.Candidate.zfilter;
            tree;
          };
        Ok (c.Candidate.table, c.Candidate.zfilter, tree, false)
    end

let publish t topic ~publisher ~payload =
  if not (List.mem publisher (Rendezvous.publishers t.rendezvous topic)) then
    Error "publisher has not advertised this topic"
  else
    let subscribers =
      List.filter
        (fun s -> s <> publisher)
        (Rendezvous.subscribers t.rendezvous topic)
    in
    if subscribers = [] then Error "topic has no remote subscribers"
    else
      match forwarding_info t topic ~publisher ~subscribers with
      | Error e -> Error e
      | Ok (table, zfilter, tree, from_cache) ->
        let header = Header.make ~d_index:table ~zfilter payload in
        let outcome = Run.deliver t.net ~src:publisher ~table ~zfilter ~tree in
        let delivered_to, missed =
          List.partition (fun s -> outcome.Run.reached.(s)) subscribers
        in
        Ok { header; tree; outcome; delivered_to; missed; from_cache }

let collect_reverse_path t ~subscriber ~publisher ~table =
  let parents = Spt.bfs_parents t.graph ~root:publisher in
  if parents.(subscriber) = -1 && subscriber <> publisher then
    invalid_arg "System.collect_reverse_path: subscriber unreachable";
  let forward = Spt.path_to t.graph parents subscriber in
  let params = Assignment.params t.assignment in
  let zfilter = Zfilter.create ~m:params.Lit.m in
  (* Each intermediate node ORs in the LIT of the reverse direction of
     the link the control message arrived on (Sec. 3.4). *)
  List.iter
    (fun l ->
      let reverse = Graph.reverse_link t.graph l in
      Zfilter.add zfilter (Assignment.tag t.assignment reverse ~table))
    forward;
  zfilter

let cache_size t = Hashtbl.length t.cache
