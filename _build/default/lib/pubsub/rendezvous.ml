module Graph = Lipsin_topology.Graph

module Node_set = Set.Make (Int)

type entry = {
  mutable pubs : Node_set.t;
  mutable subs : Node_set.t;
  mutable generation : int;
}

type t = entry Topic.Table.t

let create () = Topic.Table.create 64

let entry t topic =
  match Topic.Table.find_opt t topic with
  | Some e -> e
  | None ->
    let e = { pubs = Node_set.empty; subs = Node_set.empty; generation = 0 } in
    Topic.Table.replace t topic e;
    e

let advertise t topic ~publisher =
  let e = entry t topic in
  e.pubs <- Node_set.add publisher e.pubs

let withdraw t topic ~publisher =
  let e = entry t topic in
  e.pubs <- Node_set.remove publisher e.pubs

let subscribe t topic ~subscriber =
  let e = entry t topic in
  if not (Node_set.mem subscriber e.subs) then begin
    e.subs <- Node_set.add subscriber e.subs;
    e.generation <- e.generation + 1
  end

let unsubscribe t topic ~subscriber =
  let e = entry t topic in
  if Node_set.mem subscriber e.subs then begin
    e.subs <- Node_set.remove subscriber e.subs;
    e.generation <- e.generation + 1
  end

let subscribers t topic = Node_set.elements (entry t topic).subs
let publishers t topic = Node_set.elements (entry t topic).pubs

let active t topic =
  let e = entry t topic in
  (not (Node_set.is_empty e.pubs)) && not (Node_set.is_empty e.subs)

let topics t = Topic.Table.fold (fun topic _ acc -> topic :: acc) t []
let generation t topic = (entry t topic).generation
