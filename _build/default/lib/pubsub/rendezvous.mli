(** The rendezvous function: matching publishers to subscribers.

    Tracks, per topic, the advertising publishers and the subscribed
    nodes (Sec. 2.1).  When a topic has both a publisher and at least
    one subscriber, the rendezvous asks the topology function for a
    delivery tree and hands the publisher suitable forwarding
    information — in this implementation, via {!System}. *)

type t

val create : unit -> t

val advertise : t -> Topic.t -> publisher:Lipsin_topology.Graph.node -> unit
val withdraw : t -> Topic.t -> publisher:Lipsin_topology.Graph.node -> unit

val subscribe : t -> Topic.t -> subscriber:Lipsin_topology.Graph.node -> unit
(** Idempotent. *)

val unsubscribe : t -> Topic.t -> subscriber:Lipsin_topology.Graph.node -> unit

val subscribers : t -> Topic.t -> Lipsin_topology.Graph.node list
(** Sorted, deduplicated. *)

val publishers : t -> Topic.t -> Lipsin_topology.Graph.node list

val active : t -> Topic.t -> bool
(** A topic is active when it has at least one publisher and one
    subscriber — only then is forwarding state worth building. *)

val topics : t -> Topic.t list

val generation : t -> Topic.t -> int
(** Bumped on every subscription change; lets caches of forwarding
    information detect staleness. *)
