(** The pub/sub system: rendezvous + topology + forwarding in concert
    (Fig. 1).

    This is the substrate the paper's FreeBSD end-node prototype
    provides: nodes advertise, subscribe and publish; the topology
    function computes shortest-path delivery trees; zFilters are
    constructed, selected, cached per (topic, publisher) and
    invalidated when the subscriber set changes; packets are delivered
    through the simulated forwarding fabric. *)

type selection =
  | Standard  (** Table 0, no optimisation (d = 1 baseline). *)
  | Fpa       (** Lowest ρ^k candidate. *)
  | Fpr       (** Lowest observed false positives on the tree test set. *)
  | Avoid of Lipsin_topology.Graph.link list
      (** Fpr with heavy penalties on the given links. *)

type t

val create :
  ?params:Lipsin_bloom.Lit.params ->
  ?selection:selection ->
  ?fill_limit:float ->
  ?seed:int ->
  Lipsin_topology.Graph.t ->
  t
(** Builds the whole stack over a topology.  Defaults: paper params
    (m = 248, d = 8, k = 5), [Fpa] selection, fill limit 0.7,
    seed 1. *)

val graph : t -> Lipsin_topology.Graph.t
val assignment : t -> Lipsin_core.Assignment.t
val net : t -> Lipsin_sim.Net.t
val rendezvous : t -> Rendezvous.t

val advertise : t -> Topic.t -> publisher:Lipsin_topology.Graph.node -> unit
val subscribe : t -> Topic.t -> subscriber:Lipsin_topology.Graph.node -> unit
val unsubscribe : t -> Topic.t -> subscriber:Lipsin_topology.Graph.node -> unit

type publish_result = {
  header : Lipsin_packet.Header.t;   (** The packet as sent. *)
  tree : Lipsin_topology.Graph.link list;  (** Intended delivery tree. *)
  outcome : Lipsin_sim.Run.outcome;
  delivered_to : Lipsin_topology.Graph.node list;  (** Subscribers reached. *)
  missed : Lipsin_topology.Graph.node list;  (** Subscribers not reached. *)
  from_cache : bool;  (** zFilter reused from the forwarding cache. *)
}

val publish :
  t ->
  Topic.t ->
  publisher:Lipsin_topology.Graph.node ->
  payload:string ->
  (publish_result, string) result
(** Delivers one publication to the topic's current subscribers.
    Errors: the topic has no subscribers; the publisher has not
    advertised; every candidate exceeds the fill limit (tree too big
    for one zFilter — split or install virtual links). *)

val collect_reverse_path :
  t ->
  subscriber:Lipsin_topology.Graph.node ->
  publisher:Lipsin_topology.Graph.node ->
  table:int ->
  Lipsin_bloom.Zfilter.t
(** Sec. 3.4: the control message walks the forward path and each node
    ORs in the reverse LIT, leaving the subscriber with a valid zFilter
    towards the publisher — built without consulting the topology
    system.  @raise Invalid_argument if unreachable. *)

val cache_size : t -> int
(** Number of live (topic, publisher) zFilter cache entries. *)
