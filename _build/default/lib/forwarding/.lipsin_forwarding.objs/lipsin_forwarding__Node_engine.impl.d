lib/forwarding/node_engine.ml: Array Bytes Hashtbl Int64 Lipsin_bitvec Lipsin_bloom Lipsin_core Lipsin_topology Lipsin_util List Option Queue
