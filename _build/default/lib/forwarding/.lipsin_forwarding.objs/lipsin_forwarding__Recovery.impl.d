lib/forwarding/recovery.ml: Array Lipsin_bitvec Lipsin_bloom Lipsin_core Lipsin_topology List Node_engine Queue
