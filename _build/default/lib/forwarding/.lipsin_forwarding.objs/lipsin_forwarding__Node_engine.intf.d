lib/forwarding/node_engine.mli: Lipsin_bitvec Lipsin_bloom Lipsin_core Lipsin_topology
