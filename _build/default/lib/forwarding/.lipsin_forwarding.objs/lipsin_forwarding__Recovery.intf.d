lib/forwarding/recovery.mli: Lipsin_bitvec Lipsin_bloom Lipsin_core Lipsin_topology Node_engine
