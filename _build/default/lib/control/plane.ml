module Bitvec = Lipsin_bitvec.Bitvec
module Lit = Lipsin_bloom.Lit
module Zfilter = Lipsin_bloom.Zfilter
module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module Assignment = Lipsin_core.Assignment
module Net = Lipsin_sim.Net
module Node_engine = Lipsin_forwarding.Node_engine
module Recovery = Lipsin_forwarding.Recovery

type trace = { visited : Graph.node list; hops : int }

(* Walk a control packet hop-by-hop along the links its zFilter
   matches, expand-once, invoking [handler] at every visited node with
   the decoded message, the arrival link and the links the packet
   leaves over.  The handler may rewrite the message (hop-by-hop
   mutation is the whole point of Reverse_collect). *)
let walk net ~src ~table ~zfilter ~message ~handler =
  Net.tick net;
  let graph = Net.graph net in
  let seen_link = Array.make (Graph.link_count graph) false in
  let visited = ref [] in
  let hops = ref 0 in
  let queue = Queue.create () in
  Queue.add (src, None, message) queue;
  while not (Queue.is_empty queue) do
    let node, in_link, msg = Queue.take queue in
    visited := node :: !visited;
    let verdict =
      Node_engine.forward (Net.engine net node) ~table ~zfilter ~in_link
    in
    let next = verdict.Node_engine.forward_on in
    let msg' = handler node ~in_link ~next msg in
    List.iter
      (fun l ->
        if not seen_link.(l.Graph.index) then begin
          seen_link.(l.Graph.index) <- true;
          incr hops;
          Queue.add (l.Graph.dst, Some l, msg') queue
        end)
      next
  done;
  { visited = List.rev !visited; hops = !hops }

(* Round-trip every hop's message through the wire format: the
   simulation must not be able to smuggle richer state than the
   encoding carries. *)
let reencode msg =
  match Message.decode (Message.encode msg) with
  | Ok m -> m
  | Error e -> invalid_arg ("control message does not survive its encoding: " ^ e)

let backup_zfilter net ~backup ~table =
  let assignment = Net.assignment net in
  let params = Assignment.params assignment in
  let z = Zfilter.create ~m:params.Lit.m in
  List.iter (fun l -> Zfilter.add z (Assignment.tag assignment l ~table)) backup;
  z

let activate_backup net ~failed =
  let graph = Net.graph net in
  let assignment = Net.assignment net in
  match Recovery.backup_path graph ~link:failed with
  | None -> Error "no backup path: failed link is a bridge"
  | Some backup ->
    let identity = Assignment.lit assignment failed in
    let message =
      Message.Vlid_activate
        { nonce = Lit.nonce identity; tags = Lit.tags identity }
    in
    Node_engine.fail_link (Net.engine net failed.Graph.src) failed;
    let table = 0 in
    let zfilter = backup_zfilter net ~backup ~table in
    let handler node ~in_link:_ ~next msg =
      (match reencode msg with
      | Message.Vlid_activate { nonce; tags } when next <> [] ->
        (* Reconstitute the identity from the wire payload and install
           it towards the hops the message itself leaves over. *)
        let params = Assignment.params assignment in
        (* Reconstitute the identity deterministically from the wire
           nonce; the explicit tags cross-check the reconstruction. *)
        let identity = Lit.generate params ~nonce in
        (* The wire tags are authoritative; check they round-tripped. *)
        if
          Array.length tags = params.Lit.d
          && Array.for_all2 Bitvec.equal tags (Lit.tags identity)
        then
          Node_engine.install_virtual (Net.engine net node) identity
            ~out_links:next
        else
          (* Identity nonce unknown to this fabric: install from raw
             tags is impossible through the Lit API, so reject. *)
          invalid_arg "activation tags do not match their nonce"
      | Message.Vlid_activate _ (* leaf of the backup path *)
      | Message.Vlid_deactivate _ | Message.Block_request _
      | Message.Reverse_collect _ ->
        ());
      msg
    in
    let trace = walk net ~src:failed.Graph.src ~table ~zfilter ~message ~handler in
    Ok trace

let deactivate_backup net ~failed =
  let graph = Net.graph net in
  let assignment = Net.assignment net in
  match Recovery.backup_path graph ~link:failed with
  | None -> Error "no backup path: failed link is a bridge"
  | Some backup ->
    let identity = Assignment.lit assignment failed in
    let message = Message.Vlid_deactivate { nonce = Lit.nonce identity } in
    let table = 0 in
    let zfilter = backup_zfilter net ~backup ~table in
    (* Removal must happen while the virtual entries still steer the
       message, so remove AFTER computing each hop's next links — the
       handler sees [next] already resolved. *)
    let handler node ~in_link:_ ~next:_ msg =
      (match reencode msg with
      | Message.Vlid_deactivate { nonce } ->
        let params = Assignment.params assignment in
        Node_engine.remove_virtual (Net.engine net node)
          (Lit.generate params ~nonce)
      | Message.Vlid_activate _ | Message.Block_request _
      | Message.Reverse_collect _ ->
        ());
      msg
    in
    let trace = walk net ~src:failed.Graph.src ~table ~zfilter ~message ~handler in
    Node_engine.restore_link (Net.engine net failed.Graph.src) failed;
    Ok trace

let collect_reverse_path net ~publisher ~subscriber ~table =
  let graph = Net.graph net in
  let assignment = Net.assignment net in
  let params = Assignment.params assignment in
  let parents = Spt.bfs_parents graph ~root:publisher in
  if parents.(subscriber) = -1 && subscriber <> publisher then
    Error "subscriber unreachable from publisher"
  else begin
    let path = Spt.path_to graph parents subscriber in
    let zfilter = backup_zfilter net ~backup:path ~table in
    let message =
      Message.Reverse_collect
        { collected = Bitvec.create params.Lit.m; table }
    in
    let result = ref (Bitvec.create params.Lit.m) in
    let handler node ~in_link ~next:_ msg =
      match reencode msg with
      | Message.Reverse_collect { collected; table } ->
        let collected =
          match in_link with
          | None -> collected
          | Some l ->
            let reverse = Graph.reverse_link graph l in
            Bitvec.logor collected (Assignment.tag assignment reverse ~table)
        in
        if node = subscriber then result := collected;
        Message.Reverse_collect { collected; table }
      | (Message.Vlid_activate _ | Message.Vlid_deactivate _
        | Message.Block_request _) as other ->
        other
    in
    let trace = walk net ~src:publisher ~table ~zfilter ~message ~handler in
    if List.mem subscriber trace.visited then
      Ok (Zfilter.of_bitvec !result, trace)
    else Error "control packet never reached the subscriber"
  end

let request_block net ~over ~blocked ~table =
  (* One hop upstream: the message is processed directly at the
     upstream node's slow path. *)
  let message =
    Message.Block_request { blocked = Zfilter.to_bitvec blocked; table }
  in
  match reencode message with
  | Message.Block_request { blocked; table } ->
    Node_engine.install_block_pattern
      (Net.engine net over.Graph.src)
      over ~table blocked
  | Message.Vlid_activate _ | Message.Vlid_deactivate _
  | Message.Reverse_collect _ ->
    ()
