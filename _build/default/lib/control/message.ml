module Bitvec = Lipsin_bitvec.Bitvec

type t =
  | Vlid_activate of { nonce : int64; tags : Bitvec.t array }
  | Vlid_deactivate of { nonce : int64 }
  | Block_request of { blocked : Bitvec.t; table : int }
  | Reverse_collect of { collected : Bitvec.t; table : int }

let tag_activate = '\x01'
let tag_deactivate = '\x02'
let tag_block = '\x03'
let tag_reverse = '\x04'

let put_u16 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (v land 0xff))

let put_u64 buf v =
  for byte = 7 downto 0 do
    Buffer.add_char buf
      (Char.chr
         (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * byte)) 0xffL)))
  done

let put_bitvec buf v =
  put_u16 buf (Bitvec.length v);
  Buffer.add_bytes buf (Bitvec.to_bytes v)

let encode t =
  let buf = Buffer.create 64 in
  (match t with
  | Vlid_activate { nonce; tags } ->
    Buffer.add_char buf tag_activate;
    put_u64 buf nonce;
    Buffer.add_char buf (Char.chr (Array.length tags));
    Array.iter (put_bitvec buf) tags
  | Vlid_deactivate { nonce } ->
    Buffer.add_char buf tag_deactivate;
    put_u64 buf nonce
  | Block_request { blocked; table } ->
    Buffer.add_char buf tag_block;
    Buffer.add_char buf (Char.chr (table land 0xff));
    put_bitvec buf blocked
  | Reverse_collect { collected; table } ->
    Buffer.add_char buf tag_reverse;
    Buffer.add_char buf (Char.chr (table land 0xff));
    put_bitvec buf collected);
  Buffer.contents buf

(* A tiny cursor-based reader; every accessor checks remaining length. *)
type reader = { src : string; mutable pos : int }

exception Malformed of string

let need r n =
  if r.pos + n > String.length r.src then raise (Malformed "truncated control message")

let get_u8 r =
  need r 1;
  let v = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  v

let get_u16 r =
  let hi = get_u8 r in
  let lo = get_u8 r in
  (hi lsl 8) lor lo

let get_u64 r =
  let v = ref 0L in
  for _ = 1 to 8 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (get_u8 r))
  done;
  !v

let get_bitvec r =
  let bits = get_u16 r in
  if bits = 0 then raise (Malformed "zero-width vector");
  let len = (bits + 7) / 8 in
  need r len;
  let bytes = Bytes.of_string (String.sub r.src r.pos len) in
  r.pos <- r.pos + len;
  match Bitvec.of_bytes bits bytes with
  | v -> v
  | exception Invalid_argument msg -> raise (Malformed msg)

let finish r v =
  if r.pos <> String.length r.src then raise (Malformed "trailing bytes");
  v

let decode s =
  let r = { src = s; pos = 0 } in
  match
    let tag = Char.chr (get_u8 r) in
    if tag = tag_activate then begin
      let nonce = get_u64 r in
      let count = get_u8 r in
      if count = 0 then raise (Malformed "activation without tags");
      let tags = Array.init count (fun _ -> get_bitvec r) in
      finish r (Vlid_activate { nonce; tags })
    end
    else if tag = tag_deactivate then
      let nonce = get_u64 r in
      finish r (Vlid_deactivate { nonce })
    else if tag = tag_block then begin
      let table = get_u8 r in
      let blocked = get_bitvec r in
      finish r (Block_request { blocked; table })
    end
    else if tag = tag_reverse then begin
      let table = get_u8 r in
      let collected = get_bitvec r in
      finish r (Reverse_collect { collected; table })
    end
    else raise (Malformed "unknown message type")
  with
  | v -> Ok v
  | exception Malformed msg -> Error msg

let equal a b =
  match (a, b) with
  | Vlid_activate x, Vlid_activate y ->
    Int64.equal x.nonce y.nonce
    && Array.length x.tags = Array.length y.tags
    && Array.for_all2 Bitvec.equal x.tags y.tags
  | Vlid_deactivate x, Vlid_deactivate y -> Int64.equal x.nonce y.nonce
  | Block_request x, Block_request y ->
    x.table = y.table && Bitvec.equal x.blocked y.blocked
  | Reverse_collect x, Reverse_collect y ->
    x.table = y.table && Bitvec.equal x.collected y.collected
  | ( (Vlid_activate _ | Vlid_deactivate _ | Block_request _ | Reverse_collect _),
      _ ) ->
    false

let pp ppf = function
  | Vlid_activate { nonce; tags } ->
    Format.fprintf ppf "vlid-activate(nonce=%Lx, %d tags)" nonce (Array.length tags)
  | Vlid_deactivate { nonce } -> Format.fprintf ppf "vlid-deactivate(nonce=%Lx)" nonce
  | Block_request { table; _ } -> Format.fprintf ppf "block-request(table=%d)" table
  | Reverse_collect { table; collected } ->
    Format.fprintf ppf "reverse-collect(table=%d, %d bits set)" table
      (Bitvec.popcount collected)
