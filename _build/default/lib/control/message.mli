(** Control-plane messages (Sec. 3.4).

    Control messages ride the same forwarding fabric as data — their
    zFilter steers them, their payload addresses node slow paths:

    - {b Vlid_activate}: sent along a pre-configured backup path when a
      link fails; every node on the path installs the failed link's
      identity as a virtual entry towards the next backup hop
      (Sec. 3.3.2).  Carries the failed link's full tag set because the
      backup nodes never saw that link's identity.
    - {b Vlid_deactivate}: tears the state back down on repair.
    - {b Block_request}: sent upstream over a physical link, asking the
      upstream node to install a negative Link ID blocking a specific
      zFilter over that link (Sec. 3.3.4).
    - {b Reverse_collect}: hop-by-hop accumulation of reverse-direction
      LITs; when it reaches the subscriber, the payload is a valid
      zFilter back to the publisher, built without consulting the
      topology system (Sec. 3.4).

    The wire format is a 1-byte type tag followed by type-specific
    fields, all lengths explicit — no trust in the payload. *)

type t =
  | Vlid_activate of {
      nonce : int64;  (** The failed link's identity nonce. *)
      tags : Lipsin_bitvec.Bitvec.t array;  (** Its d LITs. *)
    }
  | Vlid_deactivate of { nonce : int64 }
  | Block_request of {
      blocked : Lipsin_bitvec.Bitvec.t;
          (** The (table-specific) filter pattern to block: a match of
              this pattern vetoes forwarding. *)
      table : int;
    }
  | Reverse_collect of {
      collected : Lipsin_bitvec.Bitvec.t;  (** Reverse LITs so far. *)
      table : int;
    }

val encode : t -> string
(** Serialises to a packet payload. *)

val decode : string -> (t, string) result
(** Total: malformed payloads yield [Error]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
