lib/control/message.ml: Array Buffer Bytes Char Format Int64 Lipsin_bitvec String
