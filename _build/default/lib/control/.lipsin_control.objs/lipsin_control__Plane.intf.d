lib/control/plane.mli: Lipsin_bloom Lipsin_sim Lipsin_topology
