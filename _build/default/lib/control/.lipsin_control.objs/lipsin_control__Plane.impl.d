lib/control/plane.ml: Array Lipsin_bitvec Lipsin_bloom Lipsin_core Lipsin_forwarding Lipsin_sim Lipsin_topology List Message Queue
