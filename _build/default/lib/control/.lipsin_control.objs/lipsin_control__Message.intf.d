lib/control/message.mli: Format Lipsin_bitvec
