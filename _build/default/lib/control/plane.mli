(** In-band control-plane operations (Secs. 3.3.2, 3.3.4, 3.4).

    Each operation is realised as an actual control packet pushed
    hop-by-hop through the forwarding fabric: the packet's zFilter
    steers it, and every node it visits decodes the payload on its slow
    path, acts, and re-encodes — no out-of-band state mutation.  These
    are the message flows the paper describes around its forwarding
    design; the direct-call equivalents live in
    {!Lipsin_forwarding.Recovery} for callers that do not need the
    signalling itself. *)

type trace = {
  visited : Lipsin_topology.Graph.node list;  (** Slow-path stops, in order. *)
  hops : int;  (** Link traversals of the control packet. *)
}

val activate_backup :
  Lipsin_sim.Net.t -> failed:Lipsin_topology.Graph.link -> (trace, string) result
(** VLId-based recovery, in-band: the node detecting the failure marks
    the port down, encodes the failed link's identity into a
    [Vlid_activate] message, and sends it over the pre-computed backup
    path; every node along the way installs the identity as a virtual
    entry towards its next hop.  Fails when the link is a bridge. *)

val deactivate_backup :
  Lipsin_sim.Net.t -> failed:Lipsin_topology.Graph.link -> (trace, string) result
(** Tears the backup state down with a [Vlid_deactivate] sweep and
    restores the physical port. *)

val collect_reverse_path :
  Lipsin_sim.Net.t ->
  publisher:Lipsin_topology.Graph.node ->
  subscriber:Lipsin_topology.Graph.node ->
  table:int ->
  (Lipsin_bloom.Zfilter.t * trace, string) result
(** Sec. 3.4 feedback-path collection: the publisher launches a
    [Reverse_collect] control packet towards the subscriber along the
    shortest path; each traversed hop ORs in the reverse LIT of the
    link the packet arrived over.  Returns the zFilter the subscriber
    ends up holding — valid for subscriber → publisher traffic. *)

val request_block :
  Lipsin_sim.Net.t ->
  over:Lipsin_topology.Graph.link ->
  blocked:Lipsin_bloom.Zfilter.t ->
  table:int ->
  unit
(** Sec. 3.3.4 upstream quench: the downstream node of [over] signals
    the upstream node to stop forwarding packets whose zFilter contains
    [blocked]'s pattern over that link.  One-hop message; takes effect
    immediately. *)
