lib/util/rng.mli:
