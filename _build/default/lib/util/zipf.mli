(** Zipf-distributed sampling.

    The paper motivates workloads by the Zipf distribution of multicast
    receivers per topic (RSS feeds, YouTube, IPTV; Sec. 4.3).  A Zipf
    sampler over ranks 1..n with exponent s assigns rank r probability
    proportional to 1/r^s. *)

type t

val create : n:int -> s:float -> t
(** [create ~n ~s] precomputes the CDF for ranks 1..n with exponent [s].
    @raise Invalid_argument if [n <= 0] or [s < 0]. *)

val draw : t -> Rng.t -> int
(** [draw t rng] returns a rank in \[1, n\], rank 1 most popular. *)

val pmf : t -> int -> float
(** [pmf t r] is the probability of rank [r].  @raise Invalid_argument if
    [r] outside \[1, n\]. *)

val n : t -> int
val s : t -> float

val subscriber_count : t -> rng:Rng.t -> max_subscribers:int -> int
(** Popularity-to-size mapping used by workload generation: draws a rank
    and scales it to a subscriber count in \[1, max_subscribers\], rank 1
    mapping to [max_subscribers] and rank n to 1 (harmonic decay). *)
