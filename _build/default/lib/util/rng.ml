type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = seed }
let of_int seed = create (Int64.of_int seed)
let copy t = { state = t.state }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = create (int64 t)

let bits30 t = Int64.to_int (Int64.shift_right_logical (int64 t) 34)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound <= 1 lsl 30 then
    (* Rejection sampling on 30 bits keeps the distribution exactly
       uniform. *)
    let mask = 1 lsl 30 in
    let limit = mask - (mask mod bound) in
    let rec draw () =
      let v = bits30 t in
      if v < limit then v mod bound else draw ()
    in
    draw ()
  else
    let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
    v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample t n bound =
  if n < 0 || n > bound then invalid_arg "Rng.sample: need 0 <= n <= bound";
  (* Floyd's algorithm: O(n) draws, no O(bound) allocation. *)
  let seen = Hashtbl.create (2 * n) in
  let out = Array.make n 0 in
  let idx = ref 0 in
  for j = bound - n to bound - 1 do
    let v = int t (j + 1) in
    let v = if Hashtbl.mem seen v then j else v in
    Hashtbl.replace seen v ();
    out.(!idx) <- v;
    incr idx
  done;
  out

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))
