(** Deterministic pseudo-random number generation.

    All randomness in the library flows through this module so that every
    experiment is reproducible from a seed.  The generator is SplitMix64
    (Steele, Lea, Flood 2014): a 64-bit state advanced by a Weyl constant
    and finalised with a variant of the MurmurHash3 mixer.  It is fast,
    passes BigCrush, and is trivially splittable, which we use to derive
    independent streams for links, tables and trials. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val of_int : int -> t
(** [of_int seed] is [create (Int64.of_int seed)]. *)

val split : t -> t
(** [split t] draws from [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val copy : t -> t
(** [copy t] duplicates the current state; both generators then produce
    the same stream. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val bits30 : t -> int
(** 30 uniform random bits as a non-negative [int]. *)

val int : t -> int -> int
(** [int t bound] is uniform in \[0, bound).  @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in \[0, bound). *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample : t -> int -> int -> int array
(** [sample t n bound] draws [n] distinct integers uniformly from
    \[0, bound) (Floyd's algorithm).  @raise Invalid_argument if
    [n > bound] or [n < 0]. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val mix64 : int64 -> int64
(** The stateless SplitMix64 finaliser; useful as a 64-bit hash. *)
