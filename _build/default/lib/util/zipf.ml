type t = { n : int; s : float; cdf : float array }

let create ~n ~s =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if s < 0.0 then invalid_arg "Zipf.create: s must be non-negative";
  let weights = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** s)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let running = ref 0.0 in
  for i = 0 to n - 1 do
    running := !running +. (weights.(i) /. total);
    cdf.(i) <- !running
  done;
  cdf.(n - 1) <- 1.0;
  { n; s; cdf }

let draw t rng =
  let u = Rng.float rng 1.0 in
  (* Binary search for the first index with cdf >= u. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.cdf.(mid) >= u then search lo mid else search (mid + 1) hi
  in
  search 0 (t.n - 1) + 1

let pmf t r =
  if r < 1 || r > t.n then invalid_arg "Zipf.pmf: rank outside [1,n]";
  if r = 1 then t.cdf.(0) else t.cdf.(r - 1) -. t.cdf.(r - 2)

let n t = t.n
let s t = t.s

let subscriber_count t ~rng ~max_subscribers =
  let rank = draw t rng in
  let size =
    int_of_float (ceil (float_of_int max_subscribers /. float_of_int rank))
  in
  max 1 (min max_subscribers size)
