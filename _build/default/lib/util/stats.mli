(** Descriptive statistics for experiment reporting.

    The paper reports means and 95th percentiles (Table 2), means and
    standard deviations (Tables 4, 5).  This module provides exactly
    those aggregates over float samples. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;  (** Sample standard deviation (n-1 denominator). *)
  min : float;
  max : float;
  p5 : float;   (** 5th percentile. *)
  p50 : float;  (** Median. *)
  p95 : float;  (** 95th percentile. *)
}

val mean : float array -> float
(** Arithmetic mean; 0 on the empty array. *)

val stddev : float array -> float
(** Sample standard deviation; 0 when fewer than two samples. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in \[0, 100\]: linear interpolation between
    closest ranks.  @raise Invalid_argument on the empty array or [p]
    outside \[0, 100\]. *)

val summarize : float array -> summary
(** All aggregates in one pass (the input array is not modified). *)

type accumulator
(** Streaming accumulator (Welford) for mean/stddev without storing
    samples. *)

val accumulator : unit -> accumulator
val add : accumulator -> float -> unit
val acc_count : accumulator -> int
val acc_mean : accumulator -> float
val acc_stddev : accumulator -> float

val pp_summary : Format.formatter -> summary -> unit
