(** Per-link traffic accounting for congestion-aware selection
    (Sec. 3.2's "dynamic Tset of congested links").

    Record the outcomes of delivered publications; the busiest links
    form the avoidance test set handed to
    {!Lipsin_core.Select.select_weighted}, steering later candidate
    choices away from hot spots. *)

type t

val create : Lipsin_topology.Graph.t -> t
(** All counters zero. *)

val record : t -> Run.outcome -> unit
(** Adds every traversal of the outcome to the counters. *)

val record_tree : t -> Lipsin_topology.Graph.link list -> unit
(** Accounts a tree directly (one traversal per link). *)

val of_link : t -> Lipsin_topology.Graph.link -> int

val total : t -> int
(** Sum over all links. *)

val max_load : t -> int

val hottest :
  t -> count:int -> Lipsin_topology.Graph.link list
(** The [count] most-loaded links, descending (ties by link index). *)

val congested :
  t -> threshold:float -> Lipsin_topology.Graph.link list
(** Links whose load exceeds [threshold] × max load, max itself
    included; empty when nothing has flowed. *)

val reset : t -> unit
