(** Event-driven latency modelling (Tables 4 and 5 substrate).

    The paper measures packets through chains of 0–3 NetFPGA forwarding
    nodes and ping round-trips through a wire, an IP router, and the
    LIPSIN switch.  Hardware is out of reach here, so this module keeps
    the *model* — end-host cost plus a per-hop forwarding cost with
    jitter — and the experiment harness feeds it per-hop costs measured
    from the real software pipeline (see bench/main.ml and
    Experiments.Table4). *)

type config = {
  endhost_us : float;  (** Send+receive cost, both ends combined. *)
  per_hop_us : float;  (** One forwarding node's processing cost. *)
  wire_us : float;     (** Propagation per segment. *)
  jitter_us : float;   (** Std-dev of gaussian noise added per sample. *)
}

val default : config
(** Calibrated to the paper's measurement: 16 µs end-host cost, 3 µs
    per NetFPGA hop, 1 µs jitter. *)

val one_way : Lipsin_util.Rng.t -> config -> hops:int -> float
(** One sampled latency through [hops] forwarding nodes ([hops] + 1
    wire segments; [hops] = 0 is the plain wire). *)

val round_trip : Lipsin_util.Rng.t -> config -> hops:int -> float
(** Echo request + reply through the same chain. *)

val sample_one_way :
  Lipsin_util.Rng.t -> config -> hops:int -> samples:int -> Lipsin_util.Stats.summary

val sample_round_trip :
  Lipsin_util.Rng.t -> config -> hops:int -> samples:int -> Lipsin_util.Stats.summary
