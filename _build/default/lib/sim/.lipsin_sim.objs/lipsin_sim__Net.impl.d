lib/sim/net.ml: Array Lipsin_core Lipsin_forwarding Lipsin_topology
