lib/sim/fluid.mli: Lipsin_topology
