lib/sim/load.ml: Array Lipsin_topology List Run
