lib/sim/timed.mli: Lipsin_bloom Lipsin_topology Lipsin_util Net
