lib/sim/run.mli: Lipsin_bloom Lipsin_topology Lipsin_util Net
