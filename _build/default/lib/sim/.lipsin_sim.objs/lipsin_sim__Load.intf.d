lib/sim/load.mli: Lipsin_topology Run
