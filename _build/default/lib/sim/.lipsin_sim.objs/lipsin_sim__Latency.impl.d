lib/sim/latency.ml: Array Float Lipsin_util
