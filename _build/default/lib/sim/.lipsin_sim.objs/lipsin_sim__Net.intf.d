lib/sim/net.mli: Lipsin_core Lipsin_forwarding Lipsin_topology
