lib/sim/fluid.ml: Array Float Lipsin_topology List
