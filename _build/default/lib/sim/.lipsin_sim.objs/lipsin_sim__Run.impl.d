lib/sim/run.ml: Array Lipsin_forwarding Lipsin_topology Lipsin_util List Net Queue
