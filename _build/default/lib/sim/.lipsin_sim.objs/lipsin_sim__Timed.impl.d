lib/sim/timed.ml: Array Lipsin_forwarding Lipsin_topology Lipsin_util List Net Option
