lib/sim/latency.mli: Lipsin_util
