module Graph = Lipsin_topology.Graph

type t = { graph : Graph.t; counts : int array }

let create graph = { graph; counts = Array.make (Graph.link_count graph) 0 }

let record t (outcome : Run.outcome) =
  List.iter
    (fun l -> t.counts.(l.Graph.index) <- t.counts.(l.Graph.index) + 1)
    outcome.Run.traversed

let record_tree t tree =
  List.iter
    (fun l -> t.counts.(l.Graph.index) <- t.counts.(l.Graph.index) + 1)
    tree

let of_link t l = t.counts.(l.Graph.index)
let total t = Array.fold_left ( + ) 0 t.counts
let max_load t = Array.fold_left max 0 t.counts

let hottest t ~count =
  let links = Graph.links t.graph in
  let indexed = Array.mapi (fun i load -> (load, i)) t.counts in
  Array.sort (fun (la, ia) (lb, ib) ->
      if la <> lb then compare lb la else compare ia ib)
    indexed;
  Array.to_list (Array.sub indexed 0 (min count (Array.length indexed)))
  |> List.map (fun (_, i) -> links.(i))

let congested t ~threshold =
  let m = max_load t in
  if m = 0 then []
  else begin
    let cutoff = threshold *. float_of_int m in
    let links = Graph.links t.graph in
    Array.to_list links
    |> List.filter (fun l -> float_of_int t.counts.(l.Graph.index) >= cutoff)
  end

let reset t = Array.fill t.counts 0 (Array.length t.counts) 0
