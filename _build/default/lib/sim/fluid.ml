module Graph = Lipsin_topology.Graph

type flow = {
  rate : float;
  links : Graph.link list;
  paths : (Graph.node * Graph.link list) list;
}

type t = {
  graph : Graph.t;
  capacity : float;
  load : float array;  (* per directed link index *)
  mutable flows : flow list;
}

let create graph ~capacity =
  if capacity <= 0.0 then invalid_arg "Fluid.create: capacity must be positive";
  {
    graph;
    capacity;
    load = Array.make (Graph.link_count graph) 0.0;
    flows = [];
  }

let add_flow t flow =
  t.flows <- flow :: t.flows;
  List.iter
    (fun l -> t.load.(l.Graph.index) <- t.load.(l.Graph.index) +. flow.rate)
    flow.links

let utilization t l = t.load.(l.Graph.index) /. t.capacity

let max_utilization t =
  Array.fold_left (fun acc load -> Float.max acc (load /. t.capacity)) 0.0 t.load

let throttle t l =
  let u = utilization t l in
  if u <= 1.0 then 1.0 else 1.0 /. u

let goodput t flow subscriber =
  match List.assoc_opt subscriber flow.paths with
  | None -> invalid_arg "Fluid.goodput: node is not a subscriber of the flow"
  | Some path ->
    flow.rate *. List.fold_left (fun acc l -> acc *. throttle t l) 1.0 path

let total_goodput t =
  List.fold_left
    (fun acc flow ->
      List.fold_left
        (fun acc (subscriber, _) -> acc +. goodput t flow subscriber)
        acc flow.paths)
    0.0 t.flows

let total_demand t =
  List.fold_left
    (fun acc flow -> acc +. (flow.rate *. float_of_int (List.length flow.paths)))
    0.0 t.flows

let delivery_ratio t =
  let demand = total_demand t in
  if demand = 0.0 then 1.0 else total_goodput t /. demand
