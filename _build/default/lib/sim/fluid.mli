(** Fluid traffic model: capacities, utilization and goodput.

    The packet-level {!Run} answers "where does one packet go"; this
    model answers "what happens under sustained load".  Each topic
    contributes a publication rate; every link it crosses — including
    links reached only through false positives, the bandwidth waste
    Eq. 3 measures — carries that rate.  Links have finite capacity;
    an over-subscribed link throttles every flow crossing it by its
    over-subscription factor (max-min-free fluid approximation), and a
    subscriber's goodput is its rate times the product of the throttle
    factors along its path.

    This quantifies the system-level cost of false positives and the
    earlier saturation of multiple-unicast delivery. *)

type flow = {
  rate : float;  (** Publications/second (or Mb/s — any consistent unit). *)
  links : Lipsin_topology.Graph.link list;
      (** Links the flow actually crosses (duplicates allowed for
          unicast; each occurrence adds load). *)
  paths : (Lipsin_topology.Graph.node * Lipsin_topology.Graph.link list) list;
      (** Per-subscriber path (subscriber, links root→subscriber). *)
}

type t

val create : Lipsin_topology.Graph.t -> capacity:float -> t
(** Uniform link capacity.  @raise Invalid_argument if not positive. *)

val add_flow : t -> flow -> unit

val utilization : t -> Lipsin_topology.Graph.link -> float
(** Offered load / capacity on a link; > 1 means over-subscribed. *)

val max_utilization : t -> float

val goodput : t -> flow -> Lipsin_topology.Graph.node -> float
(** Delivered rate at one subscriber of the flow: rate × Π min(1, 1/u)
    over its path links.  @raise Invalid_argument if the node is not a
    subscriber of the flow. *)

val total_goodput : t -> float
(** Σ over all flows and subscribers. *)

val total_demand : t -> float
(** Σ rate × subscribers — goodput when nothing saturates. *)

val delivery_ratio : t -> float
(** total_goodput / total_demand; 1.0 while the network keeps up. *)
