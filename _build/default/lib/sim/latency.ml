module Rng = Lipsin_util.Rng
module Stats = Lipsin_util.Stats

type config = {
  endhost_us : float;
  per_hop_us : float;
  wire_us : float;
  jitter_us : float;
}

let default = { endhost_us = 16.0; per_hop_us = 3.0; wire_us = 0.05; jitter_us = 1.0 }

(* Box-Muller; one gaussian per call is plenty here. *)
let gaussian rng =
  let u1 = max epsilon_float (Rng.float rng 1.0) in
  let u2 = Rng.float rng 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let one_way rng config ~hops =
  if hops < 0 then invalid_arg "Latency.one_way: negative hop count";
  let deterministic =
    config.endhost_us
    +. (float_of_int hops *. config.per_hop_us)
    +. (float_of_int (hops + 1) *. config.wire_us)
  in
  let noisy = deterministic +. (gaussian rng *. config.jitter_us) in
  Float.max 0.0 noisy

let round_trip rng config ~hops = one_way rng config ~hops +. one_way rng config ~hops

let collect f ~samples =
  if samples <= 0 then invalid_arg "Latency: samples must be positive";
  Stats.summarize (Array.init samples (fun _ -> f ()))

let sample_one_way rng config ~hops ~samples =
  collect (fun () -> one_way rng config ~hops) ~samples

let sample_round_trip rng config ~hops ~samples =
  collect (fun () -> round_trip rng config ~hops) ~samples
