(** Time-domain delivery: per-subscriber latency of a multicast
    (the ns-3 view the paper's simulations take, with store-and-forward
    timing).

    The packet leaves the source at t = 0; each hop adds the node's
    processing cost plus the link's serialization + propagation delay.
    Branching is free (hardware replicates to all matching ports in the
    same pipeline pass), so a subscriber's latency is its tree depth
    times the per-hop cost — the low-latency property the paper claims
    over overlay multicast, where each overlay hop re-crosses the
    kernel. *)

type config = {
  node_us : float;  (** Per-hop forwarding cost. *)
  link_us : float;  (** Per-link serialization + propagation. *)
}

val default : config
(** 3 µs per node (the paper's NetFPGA figure), 0.5 µs per link. *)

type arrival = {
  node : Lipsin_topology.Graph.node;
  time_us : float;
  depth : int;  (** Hops from the source. *)
}

val deliver :
  ?config:config ->
  Net.t ->
  src:Lipsin_topology.Graph.node ->
  table:int ->
  zfilter:Lipsin_bloom.Zfilter.t ->
  arrival list
(** Arrival time of the packet's first copy at every node it reaches,
    ascending by time.  The source itself arrives at t = 0. *)

val latency_to :
  arrival list -> Lipsin_topology.Graph.node -> float option
(** First-copy latency at one node. *)

val subscriber_latencies :
  arrival list -> Lipsin_topology.Graph.node list -> Lipsin_util.Stats.summary option
(** Summary over the given subscribers; [None] if any is unreached. *)

val overlay_equivalent_latency :
  ?config:config ->
  Lipsin_topology.Graph.t ->
  src:Lipsin_topology.Graph.node ->
  relays:Lipsin_topology.Graph.node list ->
  dst:Lipsin_topology.Graph.node ->
  float
(** The comparison point: the same delivery through an application
    overlay that detours via the relay nodes, paying end-host
    processing (20 × node_us) at each relay.  Used by the latency
    experiments to show the fabric's advantage. *)
