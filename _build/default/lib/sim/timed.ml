module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module Stats = Lipsin_util.Stats
module Node_engine = Lipsin_forwarding.Node_engine

type config = { node_us : float; link_us : float }

let default = { node_us = 3.0; link_us = 0.5 }

type arrival = { node : Graph.node; time_us : float; depth : int }

module Pq = struct
  (* Minimal binary heap keyed by time; sizes here are node counts. *)
  type entry = { time : float; node : Graph.node; in_link : Graph.link option; depth : int }
  type t = { mutable heap : entry array; mutable size : int }

  let create () = { heap = Array.make 16 { time = 0.; node = 0; in_link = None; depth = 0 }; size = 0 }

  let swap t i j =
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(j);
    t.heap.(j) <- tmp

  let push t entry =
    if t.size = Array.length t.heap then begin
      let bigger = Array.make (2 * t.size) entry in
      Array.blit t.heap 0 bigger 0 t.size;
      t.heap <- bigger
    end;
    t.heap.(t.size) <- entry;
    t.size <- t.size + 1;
    let i = ref (t.size - 1) in
    while !i > 0 && t.heap.((!i - 1) / 2).time > t.heap.(!i).time do
      swap t !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let pop t =
    if t.size = 0 then None
    else begin
      let top = t.heap.(0) in
      t.size <- t.size - 1;
      t.heap.(0) <- t.heap.(t.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && t.heap.(l).time < t.heap.(!smallest).time then smallest := l;
        if r < t.size && t.heap.(r).time < t.heap.(!smallest).time then smallest := r;
        if !smallest <> !i then begin
          swap t !i !smallest;
          i := !smallest
        end
        else continue := false
      done;
      Some top
    end
end

let deliver ?(config = default) net ~src ~table ~zfilter =
  Net.tick net;
  let graph = Net.graph net in
  let n = Graph.node_count graph in
  let arrival_time = Array.make n infinity in
  let arrival_depth = Array.make n 0 in
  let seen_link = Array.make (Graph.link_count graph) false in
  let pq = Pq.create () in
  Pq.push pq { Pq.time = 0.0; node = src; in_link = None; depth = 0 };
  arrival_time.(src) <- 0.0;
  let rec drain () =
    match Pq.pop pq with
    | None -> ()
    | Some { Pq.time; node; in_link; depth } ->
      let verdict =
        Node_engine.forward (Net.engine net node) ~table ~zfilter ~in_link
      in
      List.iter
        (fun l ->
          if not seen_link.(l.Graph.index) then begin
            seen_link.(l.Graph.index) <- true;
            let t' = time +. config.node_us +. config.link_us in
            let dst = l.Graph.dst in
            if t' < arrival_time.(dst) then begin
              arrival_time.(dst) <- t';
              arrival_depth.(dst) <- depth + 1
            end;
            Pq.push pq { Pq.time = t'; node = dst; in_link = Some l; depth = depth + 1 }
          end)
        verdict.Lipsin_forwarding.Node_engine.forward_on;
      drain ()
  in
  drain ();
  let arrivals = ref [] in
  for v = n - 1 downto 0 do
    if arrival_time.(v) < infinity then
      arrivals :=
        { node = v; time_us = arrival_time.(v); depth = arrival_depth.(v) }
        :: !arrivals
  done;
  List.sort (fun a b -> compare a.time_us b.time_us) !arrivals

let latency_to arrivals node =
  List.find_map
    (fun a -> if a.node = node then Some a.time_us else None)
    arrivals

let subscriber_latencies arrivals subscribers =
  let latencies = List.map (latency_to arrivals) subscribers in
  if List.exists Option.is_none latencies then None
  else
    Some (Stats.summarize (Array.of_list (List.map Option.get latencies)))

let overlay_equivalent_latency ?(config = default) graph ~src ~relays ~dst =
  (* Underlay hops still cost node+link each; every overlay relay adds
     a full user-space bounce on top. *)
  let endhost_us = 20.0 *. config.node_us in
  let per_hop = config.node_us +. config.link_us in
  let legs = relays @ [ dst ] in
  let rec total from acc = function
    | [] -> acc
    | next :: rest ->
      let dist = (Spt.distances graph ~root:from).(next) in
      if dist = max_int then invalid_arg "Timed.overlay_equivalent_latency: unreachable";
      let bounce = if rest = [] then 0.0 else endhost_us in
      total next (acc +. (float_of_int dist *. per_hop) +. bounce) rest
  in
  total src 0.0 legs
