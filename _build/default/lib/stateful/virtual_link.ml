module Rng = Lipsin_util.Rng
module Lit = Lipsin_bloom.Lit
module Graph = Lipsin_topology.Graph
module Assignment = Lipsin_core.Assignment
module Net = Lipsin_sim.Net
module Node_engine = Lipsin_forwarding.Node_engine

type t = { identity : Lit.t; links : Graph.link list }

let define ?(dense_tags = true) assignment rng ~links =
  if links = [] then invalid_arg "Virtual_link.define: empty link set";
  let params = Assignment.params assignment in
  let identity_params =
    if dense_tags then
      let k_for_table =
        Array.map (fun k -> min params.Lit.m (2 * k)) params.Lit.k_for_table
      in
      { params with Lit.k_for_table }
    else params
  in
  { identity = Lit.fresh identity_params rng; links }

let source_nodes t =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun l ->
      if Hashtbl.mem seen l.Graph.src then None
      else begin
        Hashtbl.replace seen l.Graph.src ();
        Some l.Graph.src
      end)
    t.links

let out_links_at t node =
  List.filter (fun l -> l.Graph.src = node) t.links

let install net t =
  List.iter
    (fun node ->
      Node_engine.install_virtual (Net.engine net node) t.identity
        ~out_links:(out_links_at t node))
    (source_nodes t)

let uninstall net t =
  List.iter
    (fun node -> Node_engine.remove_virtual (Net.engine net node) t.identity)
    (source_nodes t)

let tag t ~table = Lit.tag t.identity table
