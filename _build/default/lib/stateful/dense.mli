(** Stateful dense multicast (Sec. 4.2 "Stateful forwarding", Fig. 6).

    For dense subscriber sets a single zFilter would be hopelessly
    full.  The paper's winning configuration installs virtual links
    rooted at high-degree core nodes, each covering the subscribers
    nearest to it; the packet's zFilter then only needs the
    publisher→core paths plus one LIT per core tree, keeping the fill
    factor low while the virtual links fan the packet out statefully. *)

type plan = {
  publisher : Lipsin_topology.Graph.node;
  subscribers : Lipsin_topology.Graph.node list;
  cores : Lipsin_topology.Graph.node list;
  core_links : Lipsin_topology.Graph.link list;
      (** Publisher → cores shortest-path links (encoded per-link). *)
  virtuals : Virtual_link.t list;  (** One per core with subscribers. *)
  reference_tree : Lipsin_topology.Graph.link list;
      (** The plain SPT publisher → subscribers, the Eq. 3 numerator. *)
}

val plan :
  Lipsin_core.Assignment.t ->
  Lipsin_util.Rng.t ->
  publisher:Lipsin_topology.Graph.node ->
  subscribers:Lipsin_topology.Graph.node list ->
  cores:int ->
  plan
(** Chooses the [cores] highest-degree nodes, assigns each subscriber
    to its hop-nearest core, and defines one virtual link per core
    covering the core→assigned-subscribers tree.
    @raise Invalid_argument on an empty subscriber list or
    [cores <= 0]. *)

val zfilter : Lipsin_core.Assignment.t -> plan -> table:int -> Lipsin_bloom.Zfilter.t
(** Core-path LITs ORed with the virtual links' LITs. *)

type result = {
  outcome : Lipsin_sim.Run.outcome;
  efficiency : float;  (** Eq. 3 against the reference SPT. *)
  all_delivered : bool;
  fill : float;  (** Fill factor of the stateful zFilter. *)
  stateless_fill : float;
      (** Fill factor a single stateless zFilter of the full tree would
          have had (for comparison). *)
}

val execute : Lipsin_sim.Net.t -> plan -> table:int -> result
(** Installs the virtual links, delivers, uninstalls, reports. *)
