lib/stateful/dense.mli: Lipsin_bloom Lipsin_core Lipsin_sim Lipsin_topology Lipsin_util Virtual_link
