lib/stateful/virtual_link.ml: Array Hashtbl Lipsin_bloom Lipsin_core Lipsin_forwarding Lipsin_sim Lipsin_topology Lipsin_util List
