lib/stateful/dense.ml: Array Hashtbl Lipsin_bloom Lipsin_core Lipsin_sim Lipsin_topology List Option Virtual_link
