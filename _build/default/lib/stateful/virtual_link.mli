(** Virtual links (Sec. 3.3.1).

    A virtual link names an arbitrary set of unidirectional links — a
    tunnel, a partial tree, a forest — with a single Link ID and LIT
    set.  Including the one LIT in a zFilter replaces all the
    constituent links' LITs, cutting the fill factor at the price of
    forwarding state in the member nodes. *)

type t = {
  identity : Lipsin_bloom.Lit.t;
  links : Lipsin_topology.Graph.link list;  (** The covered link set. *)
}

val define :
  ?dense_tags:bool ->
  Lipsin_core.Assignment.t ->
  Lipsin_util.Rng.t ->
  links:Lipsin_topology.Graph.link list ->
  t
(** Allocates a fresh identity for the link set.  With [dense_tags]
    (default true) the identity uses roughly twice the bits per tag of
    the physical links — the paper's "careful naming of the virtual
    links (e.g. more 1-bits than in the case of physical links)"
    mitigation against costly false positives onto whole subgraphs.
    @raise Invalid_argument on an empty link set. *)

val install : Lipsin_sim.Net.t -> t -> unit
(** Distributes the identity to every node that has outgoing links in
    the set (the "communicate the Link ID to the nodes residing on the
    virtual link" step). *)

val uninstall : Lipsin_sim.Net.t -> t -> unit

val tag : t -> table:int -> Lipsin_bitvec.Bitvec.t
(** The LIT to OR into a zFilter using the given forwarding table. *)

val source_nodes : t -> Lipsin_topology.Graph.node list
(** Nodes at which the virtual link forwards (deduplicated). *)
