let header_bytes = 8

let max_chunk ~mtu ~m =
  let available = mtu - Header.header_size ~m - header_bytes in
  if available < 1 then invalid_arg "Fragment.max_chunk: MTU too small";
  available

type fragment = {
  message_id : int32;
  index : int;
  count : int;
  chunk : string;
}

let frame ~message_id ~index ~count chunk =
  let buf = Buffer.create (header_bytes + String.length chunk) in
  Buffer.add_char buf (Char.chr (Int32.to_int (Int32.shift_right_logical message_id 24) land 0xff));
  Buffer.add_char buf (Char.chr (Int32.to_int (Int32.shift_right_logical message_id 16) land 0xff));
  Buffer.add_char buf (Char.chr (Int32.to_int (Int32.shift_right_logical message_id 8) land 0xff));
  Buffer.add_char buf (Char.chr (Int32.to_int message_id land 0xff));
  Buffer.add_char buf (Char.chr ((index lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (index land 0xff));
  Buffer.add_char buf (Char.chr ((count lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (count land 0xff));
  Buffer.add_string buf chunk;
  Buffer.contents buf

let split ~mtu ~m ~message_id message =
  let chunk_size = max_chunk ~mtu ~m in
  let total = String.length message in
  let count = max 1 ((total + chunk_size - 1) / chunk_size) in
  if count > 0xffff then invalid_arg "Fragment.split: message needs too many fragments";
  List.init count (fun index ->
      let start = index * chunk_size in
      let len = min chunk_size (total - start) in
      frame ~message_id ~index ~count (String.sub message start len))

let parse payload =
  if String.length payload < header_bytes then Error "fragment too short"
  else begin
    let byte i = Char.code payload.[i] in
    let message_id =
      Int32.logor
        (Int32.shift_left (Int32.of_int (byte 0)) 24)
        (Int32.of_int ((byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3))
    in
    let index = (byte 4 lsl 8) lor byte 5 in
    let count = (byte 6 lsl 8) lor byte 7 in
    if count = 0 then Error "zero fragment count"
    else if index >= count then Error "fragment index out of range"
    else
      Ok
        {
          message_id;
          index;
          count;
          chunk = String.sub payload header_bytes (String.length payload - header_bytes);
        }
  end

type partial = {
  p_count : int;
  chunks : string option array;
  mutable have : int;
}

type reassembler = (int32, partial) Hashtbl.t

let reassembler () = Hashtbl.create 16

let offer t payload =
  match parse payload with
  | Error e -> Error e
  | Ok fragment -> (
    let partial =
      match Hashtbl.find_opt t fragment.message_id with
      | Some p -> p
      | None ->
        let p =
          {
            p_count = fragment.count;
            chunks = Array.make fragment.count None;
            have = 0;
          }
        in
        Hashtbl.replace t fragment.message_id p;
        p
    in
    if partial.p_count <> fragment.count then
      Error "conflicting fragment count for message"
    else
      match partial.chunks.(fragment.index) with
      | Some existing when not (String.equal existing fragment.chunk) ->
        Error "conflicting duplicate fragment"
      | Some _ -> Ok None  (* harmless duplicate *)
      | None ->
        partial.chunks.(fragment.index) <- Some fragment.chunk;
        partial.have <- partial.have + 1;
        if partial.have = partial.p_count then begin
          Hashtbl.remove t fragment.message_id;
          let buf = Buffer.create 256 in
          Array.iter
            (function
              | Some chunk -> Buffer.add_string buf chunk
              | None -> assert false)
            partial.chunks;
          Ok (Some (Buffer.contents buf))
        end
        else Ok None)

let pending t = Hashtbl.length t
