(** Fragmentation and reassembly (a Fig. 1 "more" function).

    zFilter networks carry variable payloads over links with an MTU;
    a publication larger than one packet is split into fragments that
    all ride the same zFilter, each framed as

    {v 4B message id | 2B index | 2B count | chunk v}

    inside the normal packet payload, and reassembled at subscribers.
    Fragments may arrive in any order; duplicates are ignored;
    conflicting frames for the same (id, index) are rejected. *)

val header_bytes : int
(** Fragment framing overhead (8 bytes). *)

val max_chunk : mtu:int -> m:int -> int
(** Payload bytes per fragment for a given link MTU and filter width
    (MTU minus packet header minus fragment framing).
    @raise Invalid_argument when the MTU cannot fit even 1 byte. *)

val split : mtu:int -> m:int -> message_id:int32 -> string -> string list
(** Fragment payloads, in order.  A message that fits yields one
    fragment (count = 1).  The empty message yields one empty
    fragment.  @raise Invalid_argument if the message needs more than
    65535 fragments. *)

type fragment = {
  message_id : int32;
  index : int;
  count : int;
  chunk : string;
}

val parse : string -> (fragment, string) result

type reassembler

val reassembler : unit -> reassembler

val offer : reassembler -> string -> (string option, string) result
(** Feeds one received fragment payload; [Ok (Some message)] when its
    message just completed (the message's state is then released),
    [Ok None] while incomplete, [Error _] on malformed or conflicting
    frames. *)

val pending : reassembler -> int
(** Messages with at least one fragment still waiting. *)
