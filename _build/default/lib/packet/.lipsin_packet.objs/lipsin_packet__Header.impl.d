lib/packet/header.ml: Bytes Char Format Lipsin_bitvec Lipsin_bloom String
