lib/packet/fragment.ml: Array Buffer Char Hashtbl Header Int32 List String
