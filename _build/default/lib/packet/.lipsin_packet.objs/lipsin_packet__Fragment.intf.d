lib/packet/fragment.mli:
