lib/packet/header.mli: Format Lipsin_bloom
