(** LIPSIN packet wire format.

    Layout (network byte order):
    {v
      0      1      2      3      4      5        5+ceil(m/8)
      +------+------+------+------+------+--- ... ---+----------+
      |magic |d idx | TTL  |   m (16-bit BE)  | zFilter | payload |
      +------+------+------+------+------+--- ... ---+----------+
    v}

    With the paper's m = 248 the header is 5 + 31 = 36 bytes —
    comparable to the 32 bytes of IPv6 source+destination that the
    paper benchmarks against.  The d index selects the forwarding
    table (Sec. 3.2, Fig. 4); TTL is the paper's final fallback
    loop-prevention method (Sec. 3.3.3). *)

type t = {
  d_index : int;  (** Forwarding-table index, 0..255. *)
  ttl : int;      (** Hops remaining, 0..255. *)
  zfilter : Lipsin_bloom.Zfilter.t;
  payload : string;
}

val magic : char
(** First byte of every LIPSIN packet. *)

val make :
  ?ttl:int -> d_index:int -> zfilter:Lipsin_bloom.Zfilter.t -> string -> t
(** [make ~d_index ~zfilter payload]; default [ttl] = 64.
    @raise Invalid_argument if [d_index] or [ttl] outside 0..255. *)

val header_size : m:int -> int
(** Bytes of header preceding the payload. *)

val size : t -> int
(** Total encoded size in bytes. *)

val decrement_ttl : t -> t option
(** [None] when the TTL is exhausted (packet must be dropped). *)

val encode : t -> bytes

val decode : bytes -> (t, string) result
(** Parses a full packet.  Returns [Error _] on short input, bad magic,
    or an m that does not match the remaining length. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
