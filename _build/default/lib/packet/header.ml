module Bitvec = Lipsin_bitvec.Bitvec
module Zfilter = Lipsin_bloom.Zfilter

type t = {
  d_index : int;
  ttl : int;
  zfilter : Zfilter.t;
  payload : string;
}

let magic = '\xC5'

let make ?(ttl = 64) ~d_index ~zfilter payload =
  if d_index < 0 || d_index > 255 then invalid_arg "Header.make: d_index outside 0..255";
  if ttl < 0 || ttl > 255 then invalid_arg "Header.make: ttl outside 0..255";
  { d_index; ttl; zfilter; payload }

let header_size ~m = 5 + ((m + 7) / 8)
let size t = header_size ~m:(Zfilter.m t.zfilter) + String.length t.payload

let decrement_ttl t = if t.ttl <= 0 then None else Some { t with ttl = t.ttl - 1 }

let encode t =
  let m = Zfilter.m t.zfilter in
  let filter_bytes = Bitvec.to_bytes (Zfilter.to_bitvec t.zfilter) in
  let out = Bytes.create (size t) in
  Bytes.set out 0 magic;
  Bytes.set out 1 (Char.chr t.d_index);
  Bytes.set out 2 (Char.chr t.ttl);
  Bytes.set out 3 (Char.chr ((m lsr 8) land 0xff));
  Bytes.set out 4 (Char.chr (m land 0xff));
  Bytes.blit filter_bytes 0 out 5 (Bytes.length filter_bytes);
  Bytes.blit_string t.payload 0 out (5 + Bytes.length filter_bytes)
    (String.length t.payload);
  out

let decode buf =
  let len = Bytes.length buf in
  if len < 5 then Error "packet shorter than fixed header"
  else if Bytes.get buf 0 <> magic then Error "bad magic byte"
  else
    let d_index = Char.code (Bytes.get buf 1) in
    let ttl = Char.code (Bytes.get buf 2) in
    let m = (Char.code (Bytes.get buf 3) lsl 8) lor Char.code (Bytes.get buf 4) in
    if m = 0 then Error "zero filter width"
    else
      let filter_len = (m + 7) / 8 in
      if len < 5 + filter_len then Error "packet truncated inside zFilter"
      else
        match Bitvec.of_bytes m (Bytes.sub buf 5 filter_len) with
        | exception Invalid_argument msg -> Error msg
        | bits ->
          let payload =
            Bytes.sub_string buf (5 + filter_len) (len - 5 - filter_len)
          in
          Ok { d_index; ttl; zfilter = Zfilter.of_bitvec bits; payload }

let equal a b =
  a.d_index = b.d_index && a.ttl = b.ttl
  && Zfilter.equal a.zfilter b.zfilter
  && String.equal a.payload b.payload

let pp ppf t =
  Format.fprintf ppf "packet(d=%d ttl=%d fill=%.3f payload=%dB)" t.d_index t.ttl
    (Zfilter.fill_factor t.zfilter)
    (String.length t.payload)
