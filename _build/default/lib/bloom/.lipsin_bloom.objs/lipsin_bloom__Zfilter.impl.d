lib/bloom/zfilter.ml: Lipsin_bitvec List
