lib/bloom/lit.mli: Format Lipsin_bitvec Lipsin_util
