lib/bloom/zfilter.mli: Format Lipsin_bitvec
