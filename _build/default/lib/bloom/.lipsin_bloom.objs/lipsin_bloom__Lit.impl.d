lib/bloom/lit.ml: Array Format Int64 Lipsin_bitvec Lipsin_util
