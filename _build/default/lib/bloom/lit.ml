module Rng = Lipsin_util.Rng
module Bitvec = Lipsin_bitvec.Bitvec

type params = { m : int; d : int; k_for_table : int array }

let validate p =
  if p.m <= 0 then invalid_arg "Lit.params: m must be positive";
  if p.d <= 0 then invalid_arg "Lit.params: d must be positive";
  if Array.length p.k_for_table <> p.d then
    invalid_arg "Lit.params: k_for_table length must equal d";
  Array.iter
    (fun k ->
      if k <= 0 || k > p.m then invalid_arg "Lit.params: k outside (0, m]")
    p.k_for_table

let constant_k ~m ~d ~k =
  let p = { m; d; k_for_table = Array.make d k } in
  validate p;
  p

let variable_k ~m ~d ~ks =
  if Array.length ks = 0 then invalid_arg "Lit.variable_k: empty k list";
  let p = { m; d; k_for_table = Array.init d (fun i -> ks.(i mod Array.length ks)) } in
  validate p;
  p

let default = constant_k ~m:248 ~d:8 ~k:5
let paper_variable = variable_k ~m:248 ~d:8 ~ks:[| 3; 3; 4; 4; 5; 5; 6; 6 |]

type t = { params : params; nonce : int64; tags : Bitvec.t array }

let generate params ~nonce =
  validate params;
  let tag_for_table i =
    (* An independent position stream per (nonce, table): mixing the
       table index through SplitMix64 decorrelates the d tags of a
       link. *)
    let seed = Rng.mix64 (Int64.logxor nonce (Rng.mix64 (Int64.of_int (i + 1)))) in
    let rng = Rng.create seed in
    let k = params.k_for_table.(i) in
    let positions = Rng.sample rng k params.m in
    Bitvec.of_positions params.m (Array.to_list positions)
  in
  { params; nonce; tags = Array.init params.d tag_for_table }

let fresh params rng = generate params ~nonce:(Rng.int64 rng)
let params t = t.params
let nonce t = t.nonce

let tag t i =
  if i < 0 || i >= t.params.d then invalid_arg "Lit.tag: table index out of range";
  t.tags.(i)

let tags t = Array.copy t.tags
let link_id t = t.tags.(0)

let equal a b =
  Int64.equal a.nonce b.nonce
  && a.params.m = b.params.m && a.params.d = b.params.d
  && a.params.k_for_table = b.params.k_for_table

let pp ppf t =
  Format.fprintf ppf "lit(nonce=%Lx, m=%d, d=%d)" t.nonce t.params.m t.params.d
