(** Link IDs and Link ID Tags (LITs).

    Every unidirectional link carries d distinct identities (Sec. 3.2,
    Fig. 3): forwarding table i holds the link's i-th tag, and a packet's
    header says which table to use, so the d tags give d "equivalent"
    candidate zFilters for the same delivery tree.

    A tag is an m-bit vector with k bits set, derived deterministically
    from the link's 64-bit nonce and the table index, so two nodes never
    need to agree on tag assignment — statistical uniqueness does the
    work (m = 248, k = 5 gives ~9*10^11 distinct Link IDs). *)

type params = {
  m : int;  (** Filter width in bits (paper default 248). *)
  d : int;  (** Number of forwarding tables / candidate filters. *)
  k_for_table : int array;  (** [k_for_table.(i)] = bits set in table i's tags; length [d]. *)
}

val constant_k : m:int -> d:int -> k:int -> params
(** All tables use the same k (the paper's kc = 5 configuration). *)

val variable_k : m:int -> d:int -> ks:int array -> params
(** Table i uses [ks.(i mod Array.length ks)] — the paper's kd
    configuration uses ks = \[|3;3;4;4;5;5;6;6|\].
    @raise Invalid_argument if [ks] is empty. *)

val default : params
(** m = 248, d = 8, constant k = 5. *)

val paper_variable : params
(** m = 248, d = 8, variable k = \[3;3;4;4;5;5;6;6\]. *)

val validate : params -> unit
(** @raise Invalid_argument unless [m > 0], [d > 0],
    [Array.length k_for_table = d] and every k is in (0, m\]. *)

type t
(** The full identity of one unidirectional link: its nonce and its d
    tags. *)

val generate : params -> nonce:int64 -> t
(** Deterministically derives the d tags from [nonce].  Each tag has
    exactly [k_for_table.(i)] distinct bits set. *)

val fresh : params -> Lipsin_util.Rng.t -> t
(** Draws a random nonce from the generator, then {!generate}. *)

val params : t -> params
val nonce : t -> int64

val tag : t -> int -> Lipsin_bitvec.Bitvec.t
(** [tag t i] is the LIT for forwarding table [i].  The result is the
    module's private copy: callers must not mutate it.
    @raise Invalid_argument if [i] outside \[0, d). *)

val tags : t -> Lipsin_bitvec.Bitvec.t array
(** Fresh array of (shared) tags, index = table. *)

val link_id : t -> Lipsin_bitvec.Bitvec.t
(** The plain Link ID — by convention the tag of table 0. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
