(** Inter-domain routing policy (Sec. 5.3, and the valley-free loop
    prevention alternative of Sec. 3.3.3).

    Domain links are classified by business relationship; a packet path
    is {e valley-free} when it climbs customer→provider links first,
    crosses at most one peering link at the top, and then only descends
    provider→customer — i.e. matches [up* peer? down*].  Policy
    compliance of a delivery tree means every root-to-leaf path is
    valley-free. *)

type relation =
  | Customer_of  (** src pays dst: traversing src→dst goes "up". *)
  | Provider_of  (** dst pays src: traversing src→dst goes "down". *)
  | Peer_of      (** settlement-free: "across". *)

type t

val create :
  Lipsin_topology.Graph.t -> (int * int * relation) list -> t
(** [create g rels] labels each listed (src, dst) domain pair; the
    reverse direction is derived automatically.  Unlabelled links
    default to peering.
    @raise Invalid_argument if a pair is not an edge of [g] or is
    labelled twice inconsistently. *)

val infer_by_degree : Lipsin_topology.Graph.t -> t
(** The standard heuristic: across each link, the higher-degree domain
    is the provider; equal degrees peer. *)

val relation : t -> src:int -> dst:int -> relation
(** @raise Invalid_argument if the domains do not peer. *)

val valley_free : t -> int list -> bool
(** Is the given domain path (node sequence) valley-free?  Paths of
    length ≤ 1 trivially are. *)

val check_tree :
  t ->
  Lipsin_topology.Graph.t ->
  root:int ->
  tree:Lipsin_topology.Graph.link list ->
  (unit, int list list) result
(** Checks every root-to-leaf path of the delivery tree; [Error]
    carries the violating paths.  Used to vet inter-domain zFilters
    before installation. *)

val filter_links :
  t -> from_relation:relation -> Lipsin_topology.Graph.link list ->
  Lipsin_topology.Graph.link list
(** The sub-list whose traversal has the given relation — e.g. the
    "links to be avoided due to routing policies" Tset handed to
    {!Lipsin_core.Select.select_weighted}. *)
