module Rng = Lipsin_util.Rng
module Store = Lipsin_cache.Store

type t = {
  rendezvous : (int64, string * int) Hashtbl.t array;
      (* per rendezvous node: topic -> (record, version) *)
  edge_caches : Store.t array;
  edge_versions : (int64, int) Hashtbl.t array;
      (* version each edge cached, for lazy invalidation *)
  mutable lookups : int;
  mutable edge_hits : int;
  mutable rendezvous_hits : int;
  mutable misses : int;
}

let create ~rendezvous_nodes ~edge_nodes ~edge_cache_capacity =
  if rendezvous_nodes <= 0 || edge_nodes <= 0 || edge_cache_capacity <= 0 then
    invalid_arg "Directory.create: counts must be positive";
  {
    rendezvous = Array.init rendezvous_nodes (fun _ -> Hashtbl.create 256);
    edge_caches =
      Array.init edge_nodes (fun _ -> Store.create ~capacity:edge_cache_capacity);
    edge_versions = Array.init edge_nodes (fun _ -> Hashtbl.create 256);
    lookups = 0;
    edge_hits = 0;
    rendezvous_hits = 0;
    misses = 0;
  }

let home_of t ~topic =
  Int64.to_int
    (Int64.rem
       (Int64.logand (Rng.mix64 topic) 0x7FFFFFFFFFFFFFFFL)
       (Int64.of_int (Array.length t.rendezvous)))

let install t ~topic ~zfilter =
  let home = t.rendezvous.(home_of t ~topic) in
  let version =
    match Hashtbl.find_opt home topic with Some (_, v) -> v + 1 | None -> 1
  in
  Hashtbl.replace home topic (zfilter, version)

type source = Edge_cache | Rendezvous of int

type stats = {
  lookups : int;
  edge_hits : int;
  rendezvous_hits : int;
  misses : int;
}

let lookup t ~edge ~topic =
  if edge < 0 || edge >= Array.length t.edge_caches then
    invalid_arg "Directory.lookup: edge out of range";
  t.lookups <- t.lookups + 1;
  let home_index = home_of t ~topic in
  let authoritative = Hashtbl.find_opt t.rendezvous.(home_index) topic in
  let cached =
    match
      ( Store.lookup t.edge_caches.(edge) ~topic,
        Hashtbl.find_opt t.edge_versions.(edge) topic )
    with
    | Some record, Some cached_version -> Some (record, cached_version)
    | _ -> None
  in
  match (cached, authoritative) with
  | Some (record, cached_version), Some (_, version)
    when cached_version = version ->
    t.edge_hits <- t.edge_hits + 1;
    Some (record, Edge_cache)
  | _, Some (record, version) ->
    (* Stale or absent at the edge: fetch from the home node and
       refresh the cache-like forwarding map. *)
    t.rendezvous_hits <- t.rendezvous_hits + 1;
    Store.insert t.edge_caches.(edge) ~topic ~payload:record;
    Hashtbl.replace t.edge_versions.(edge) topic version;
    Some (record, Rendezvous home_index)
  | _, None ->
    t.misses <- t.misses + 1;
    None

let stats (t : t) =
  {
    lookups = t.lookups;
    edge_hits = t.edge_hits;
    rendezvous_hits = t.rendezvous_hits;
    misses = t.misses;
  }

let resource_estimate ~topics ~topic_bytes ~header_bytes =
  topics *. float_of_int (topic_bytes + header_bytes) /. 1e12
