(** Inter-domain forwarding by recursive layering (Sec. 5.1).

    Every packet carries two forwarding headers: an inter-domain
    zFilter over {e IdLIds} — one inter-domain Link ID per neighbouring
    domain pair plus one "local receivers" IdLId per domain — and an
    intra-domain zFilter that is replaced at each domain boundary.

    A domain receiving a packet:
    + optionally verifies the incoming IdLId is present (policy check);
    + if its local-receivers IdLId matches, asks its rendezvous for the
      topic's local subscriber set and delivers intra-domain;
    + for each outgoing IdLId that matches, forwards the packet to the
      next domain over the intra path from the entry border to the
      exit border, with a freshly looked-up intra zFilter.

    Domains are visited at most once per publication (the domain-level
    analogue of expand-once). *)

type address = { domain : int; node : Lipsin_topology.Graph.node }

type t

val create :
  ?params:Lipsin_bloom.Lit.params ->
  ?seed:int ->
  domain_graph:Lipsin_topology.Graph.t ->
  intra:Lipsin_topology.Graph.t array ->
  unit ->
  t
(** [create ~domain_graph ~intra ()] builds an internet of
    [Array.length intra] domains whose peerings are the edges of
    [domain_graph].  Border routers for each peering are chosen
    deterministically inside each domain.
    @raise Invalid_argument if the domain graph's node count differs
    from the number of intra graphs. *)

val domain_count : t -> int
val intra_graph : t -> int -> Lipsin_topology.Graph.t
val border : t -> src_domain:int -> dst_domain:int -> Lipsin_topology.Graph.node
(** The border router of [src_domain] facing [dst_domain].
    @raise Invalid_argument if the domains do not peer. *)

val subscribe : t -> topic:int64 -> address -> unit
val unsubscribe : t -> topic:int64 -> address -> unit
val subscribers : t -> topic:int64 -> address list

type delivery = {
  delivered : address list;
  missed : address list;
  domains_visited : int list;  (** In visit order, publisher first. *)
  intra_traversals : int;      (** Total intra-domain link traversals. *)
  inter_traversals : int;      (** Domain-boundary crossings. *)
  false_domain_entries : int;  (** Domains entered on IdLId false positives. *)
  intra_false_positives : int;
}

val publish : t -> topic:int64 -> publisher:address -> (delivery, string) result
(** Delivers to the topic's current subscribers across domains. *)

val interdomain_fill : t -> topic:int64 -> publisher:address -> float option
(** Fill factor of the inter-domain zFilter a publication would use
    ([None] when the topic has no subscribers). *)
