module Graph = Lipsin_topology.Graph

type relation = Customer_of | Provider_of | Peer_of

let inverse = function
  | Customer_of -> Provider_of
  | Provider_of -> Customer_of
  | Peer_of -> Peer_of

type t = { graph : Graph.t; relations : (int * int, relation) Hashtbl.t }

let create graph rels =
  let relations = Hashtbl.create 64 in
  let label src dst r =
    match Hashtbl.find_opt relations (src, dst) with
    | Some existing when existing <> r ->
      invalid_arg "Policy.create: inconsistent relabelling"
    | Some _ -> ()
    | None -> Hashtbl.replace relations (src, dst) r
  in
  List.iter
    (fun (src, dst, r) ->
      if Graph.find_link graph ~src ~dst = None then
        invalid_arg "Policy.create: labelled pair is not a domain link";
      label src dst r;
      label dst src (inverse r))
    rels;
  { graph; relations }

let infer_by_degree graph =
  let rels = ref [] in
  Graph.iter_links graph (fun l ->
      if l.Graph.src < l.Graph.dst then begin
        let ds = Graph.out_degree graph l.Graph.src in
        let dd = Graph.out_degree graph l.Graph.dst in
        let r =
          if ds < dd then Customer_of
          else if ds > dd then Provider_of
          else Peer_of
        in
        rels := (l.Graph.src, l.Graph.dst, r) :: !rels
      end);
  create graph !rels

let relation t ~src ~dst =
  if Graph.find_link t.graph ~src ~dst = None then
    invalid_arg "Policy.relation: domains do not peer";
  Option.value ~default:Peer_of (Hashtbl.find_opt t.relations (src, dst))

(* Valley-free = up* peer? down*.  Track the phase; climbing or peering
   after a peer/descent is a valley. *)
let valley_free t path =
  let rec check phase = function
    | a :: (b :: _ as rest) ->
      let r = relation t ~src:a ~dst:b in
      (match (phase, r) with
      | `Up, Customer_of -> check `Up rest
      | `Up, Peer_of -> check `Down rest
      | `Up, Provider_of -> check `Down rest
      | `Down, Provider_of -> check `Down rest
      | `Down, (Customer_of | Peer_of) -> false)
    | [ _ ] | [] -> true
  in
  check `Up path

let check_tree t graph ~root ~tree =
  (* Children per node within the tree. *)
  let children = Hashtbl.create 16 in
  ignore graph;
  List.iter
    (fun l ->
      let existing =
        Option.value ~default:[] (Hashtbl.find_opt children l.Graph.src)
      in
      Hashtbl.replace children l.Graph.src (l.Graph.dst :: existing))
    tree;
  let violations = ref [] in
  let rec walk node path_rev =
    let path = List.rev (node :: path_rev) in
    match Hashtbl.find_opt children node with
    | None | Some [] ->
      if not (valley_free t path) then violations := path :: !violations
    | Some kids ->
      if not (valley_free t path) then violations := path :: !violations
      else List.iter (fun kid -> walk kid (node :: path_rev)) kids
  in
  walk root [];
  if !violations = [] then Ok () else Error (List.rev !violations)

let filter_links t ~from_relation links =
  List.filter
    (fun l -> relation t ~src:l.Graph.src ~dst:l.Graph.dst = from_relation)
    links
