(** The topic directory of Sec. 5.1–5.2.

    "The subscriber information may be divided between a set of
    intra-domain rendezvous nodes, providing load distribution.
    Eventually, a rendezvous node looks up the intra-domain zFilter by
    using the topic identifier.  [...] the rendezvous nodes can
    construct cache-like forwarding maps and distribute them to the
    edge nodes."

    A topic's record lives on exactly one rendezvous node (hash
    partitioning); edge nodes keep LRU caches of the hottest topics so
    most lookups never leave the edge.  {!resource_estimate} reproduces
    the paper's back-of-envelope storage arithmetic. *)

type t

val create : rendezvous_nodes:int -> edge_nodes:int -> edge_cache_capacity:int -> t
(** @raise Invalid_argument if any count is not positive. *)

val install : t -> topic:int64 -> zfilter:string -> unit
(** Installs/updates the topic's intra-domain forwarding record on its
    home rendezvous node (and invalidates stale edge-cache copies
    lazily on the next lookup). *)

type source =
  | Edge_cache       (** Served locally at the edge node. *)
  | Rendezvous of int  (** Served by the topic's home rendezvous node. *)

val lookup : t -> edge:int -> topic:int64 -> (string * source) option
(** Resolves a topic at an edge node, filling the edge's cache on a
    rendezvous hit; [None] for unknown topics. *)

type stats = {
  lookups : int;
  edge_hits : int;
  rendezvous_hits : int;
  misses : int;
}

val stats : t -> stats

val home_of : t -> topic:int64 -> int
(** The rendezvous node responsible for a topic. *)

val resource_estimate :
  topics:float -> topic_bytes:int -> header_bytes:int -> float
(** Sec. 5.2's storage bill in terabytes: topics × (name + forwarding
    header).  The paper's numbers: 10^11 topics × (40 + ~34) bytes ≈
    10 TB. *)
