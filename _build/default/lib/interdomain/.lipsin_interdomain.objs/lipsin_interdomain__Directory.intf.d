lib/interdomain/directory.mli:
