lib/interdomain/internet.ml: Array Hashtbl Int64 Lipsin_bloom Lipsin_core Lipsin_sim Lipsin_topology Lipsin_util List Queue
