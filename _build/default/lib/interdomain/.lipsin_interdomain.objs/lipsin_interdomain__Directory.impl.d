lib/interdomain/directory.ml: Array Hashtbl Int64 Lipsin_cache Lipsin_util
