lib/interdomain/policy.ml: Hashtbl Lipsin_topology List Option
