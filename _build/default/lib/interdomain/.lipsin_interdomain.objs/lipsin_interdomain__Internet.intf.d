lib/interdomain/internet.mli: Lipsin_bloom Lipsin_topology
