lib/interdomain/policy.mli: Lipsin_topology
