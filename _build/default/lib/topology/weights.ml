module Rng = Lipsin_util.Rng

type t = { graph : Graph.t; weights : float array }

let check w = if w <= 0.0 then invalid_arg "Weights: weights must be positive"

let uniform graph w =
  check w;
  { graph; weights = Array.make (Graph.link_count graph) w }

let random graph rng ~min ~max =
  if min <= 0.0 || max < min then invalid_arg "Weights.random: need 0 < min <= max";
  let weights = Array.make (Graph.link_count graph) 0.0 in
  Graph.iter_links graph (fun l ->
      let reverse = Graph.reverse_link graph l in
      if l.Graph.index < reverse.Graph.index then begin
        let w = min +. Rng.float rng (max -. min) in
        weights.(l.Graph.index) <- w;
        weights.(reverse.Graph.index) <- w
      end);
  { graph; weights }

let of_function graph f =
  let weights =
    Array.map
      (fun l ->
        let w = f l in
        check w;
        w)
      (Graph.links graph)
  in
  { graph; weights }

let weight t l = t.weights.(l.Graph.index)

(* Dijkstra with a simple binary heap over (distance, node). *)
module Heap = struct
  type entry = { dist : float; node : int }
  type h = { mutable a : entry array; mutable size : int }

  let create () = { a = Array.make 16 { dist = 0.0; node = 0 }; size = 0 }

  let swap h i j =
    let tmp = h.a.(i) in
    h.a.(i) <- h.a.(j);
    h.a.(j) <- tmp

  let less a b = a.dist < b.dist || (a.dist = b.dist && a.node < b.node)

  let push h entry =
    if h.size = Array.length h.a then begin
      let bigger = Array.make (2 * h.size) entry in
      Array.blit h.a 0 bigger 0 h.size;
      h.a <- bigger
    end;
    h.a.(h.size) <- entry;
    h.size <- h.size + 1;
    let i = ref (h.size - 1) in
    while !i > 0 && less h.a.(!i) h.a.((!i - 1) / 2) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.a.(0) in
      h.size <- h.size - 1;
      h.a.(0) <- h.a.(h.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && less h.a.(l) h.a.(!smallest) then smallest := l;
        if r < h.size && less h.a.(r) h.a.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          swap h !i !smallest;
          i := !smallest
        end
        else continue := false
      done;
      Some top
    end
end

let dijkstra t ~root =
  let n = Graph.node_count t.graph in
  let dist = Array.make n infinity in
  let parents = Array.make n (-1) in
  let finished = Array.make n false in
  dist.(root) <- 0.0;
  let heap = Heap.create () in
  Heap.push heap { Heap.dist = 0.0; node = root };
  let rec drain () =
    match Heap.pop heap with
    | None -> ()
    | Some { Heap.dist = d; node = u } ->
      if not finished.(u) then begin
        finished.(u) <- true;
        List.iter
          (fun l ->
            let v = l.Graph.dst in
            let nd = d +. t.weights.(l.Graph.index) in
            if
              nd < dist.(v)
              || (nd = dist.(v) && parents.(v) <> -1 && u < parents.(v))
            then begin
              dist.(v) <- nd;
              parents.(v) <- u;
              Heap.push heap { Heap.dist = nd; node = v }
            end)
          (Graph.out_links t.graph u)
      end;
      drain ()
  in
  drain ();
  (dist, parents)

let path_to t ~parents node =
  let rec climb v acc =
    let p = parents.(v) in
    if p = -1 then acc
    else
      match Graph.find_link t.graph ~src:p ~dst:v with
      | Some l -> climb p (l :: acc)
      | None -> invalid_arg "Weights.path_to: broken parent chain"
  in
  climb node []

let delivery_tree t ~root ~subscribers =
  let _, parents = dijkstra t ~root in
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  List.iter
    (fun sub ->
      if sub <> root then begin
        if parents.(sub) = -1 then
          invalid_arg "Weights.delivery_tree: subscriber unreachable";
        List.iter
          (fun l ->
            if not (Hashtbl.mem seen l.Graph.index) then begin
              Hashtbl.replace seen l.Graph.index ();
              acc := l :: !acc
            end)
          (path_to t ~parents sub)
      end)
    subscribers;
  List.rev !acc

let tree_cost t links =
  List.fold_left (fun acc l -> acc +. t.weights.(l.Graph.index)) 0.0 links
