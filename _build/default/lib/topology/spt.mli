(** Shortest-path trees and delivery trees.

    The paper's topology function always selects "the shortest paths
    between the publisher and each of the subscribers" (Sec. 4.2).  All
    evaluated topologies are unweighted router graphs, so BFS gives the
    trees; ties break deterministically on the first-discovered parent
    with neighbors visited in link-insertion order, keeping every
    experiment reproducible. *)

type parents = int array
(** [parents.(v)] is the BFS parent of v, [-1] for the root and for
    unreachable nodes. *)

val bfs_parents : Graph.t -> root:Graph.node -> parents

val distances : Graph.t -> root:Graph.node -> int array
(** Hop counts from the root; [max_int] where unreachable. *)

val path_to : Graph.t -> parents -> Graph.node -> Graph.link list
(** Directed links root → … → node following the parent chain (forward
    direction, in path order).  Empty list for the root itself.
    @raise Invalid_argument if the node is unreachable. *)

val delivery_tree :
  Graph.t -> root:Graph.node -> subscribers:Graph.node list -> Graph.link list
(** The union of the shortest paths from [root] to every subscriber:
    the set of directed links of the delivery tree, deduplicated, in
    deterministic order.  Subscribers equal to the root contribute no
    links.  @raise Invalid_argument if any subscriber is unreachable. *)

val tree_nodes : Graph.link list -> Graph.node list
(** All nodes touched by the given links (sources and destinations),
    deduplicated. *)

val is_connected : Graph.t -> bool
