type parents = int array

let bfs_parents g ~root =
  let n = Graph.node_count g in
  let parents = Array.make n (-1) in
  let visited = Array.make n false in
  visited.(root) <- true;
  let queue = Queue.create () in
  Queue.add root queue;
  while not (Queue.is_empty queue) do
    let u = Queue.take queue in
    let visit l =
      let v = l.Graph.dst in
      if not visited.(v) then begin
        visited.(v) <- true;
        parents.(v) <- u;
        Queue.add v queue
      end
    in
    List.iter visit (Graph.out_links g u)
  done;
  parents

let distances g ~root =
  let n = Graph.node_count g in
  let dist = Array.make n max_int in
  dist.(root) <- 0;
  let queue = Queue.create () in
  Queue.add root queue;
  while not (Queue.is_empty queue) do
    let u = Queue.take queue in
    let visit l =
      let v = l.Graph.dst in
      if dist.(v) = max_int then begin
        dist.(v) <- dist.(u) + 1;
        Queue.add v queue
      end
    in
    List.iter visit (Graph.out_links g u)
  done;
  dist

let path_to g parents node =
  let rec climb v acc =
    let p = parents.(v) in
    if p = -1 then acc
    else
      match Graph.find_link g ~src:p ~dst:v with
      | Some l -> climb p (l :: acc)
      | None -> invalid_arg "Spt.path_to: parent link missing"
  in
  climb node []

let delivery_tree g ~root ~subscribers =
  let parents = bfs_parents g ~root in
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  let add_path sub =
    if sub <> root then begin
      if parents.(sub) = -1 then
        invalid_arg "Spt.delivery_tree: subscriber unreachable from root";
      let path = path_to g parents sub in
      let record l =
        if not (Hashtbl.mem seen l.Graph.index) then begin
          Hashtbl.replace seen l.Graph.index ();
          acc := l :: !acc
        end
      in
      List.iter record path
    end
  in
  List.iter add_path subscribers;
  List.rev !acc

let tree_nodes links =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  let add v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.replace seen v ();
      acc := v :: !acc
    end
  in
  List.iter
    (fun l ->
      add l.Graph.src;
      add l.Graph.dst)
    links;
  List.rev !acc

let is_connected g =
  let dist = distances g ~root:0 in
  Array.for_all (fun d -> d <> max_int) dist
