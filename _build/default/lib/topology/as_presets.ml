module Rng = Lipsin_util.Rng

type spec = {
  name : string;
  nodes : int;
  edges : int;
  diameter : int;
  radius : int;
  avg_degree : int;
  max_degree : int;
}

let paper_table1 =
  [
    { name = "AS1221"; nodes = 104; edges = 151; diameter = 8; radius = 4; avg_degree = 2; max_degree = 18 };
    { name = "AS3257"; nodes = 161; edges = 328; diameter = 10; radius = 5; avg_degree = 3; max_degree = 29 };
    { name = "AS3967"; nodes = 79; edges = 147; diameter = 10; radius = 6; avg_degree = 3; max_degree = 12 };
    { name = "AS6461"; nodes = 138; edges = 372; diameter = 8; radius = 4; avg_degree = 5; max_degree = 20 };
    { name = "TA2"; nodes = 65; edges = 108; diameter = 8; radius = 5; avg_degree = 3; max_degree = 10 };
  ]

(* Seeds and chain fractions tuned offline so the generated graphs land
   on the paper's Table 1 statistics; see test/test_topology.ml for the
   regression that pins them. *)

let as1221 () =
  Generator.pref_attach
    ~rng:(Rng.create 1000023L)
    ~nodes:104 ~edges:151 ~max_degree:18 ~chain_fraction:0.20 ()

let as3257 () =
  Generator.pref_attach
    ~rng:(Rng.create 4000042L)
    ~nodes:161 ~edges:328 ~max_degree:29 ~chain_fraction:0.30 ()

let as3967 () =
  Generator.pref_attach
    ~rng:(Rng.create 31000153L)
    ~nodes:79 ~edges:147 ~max_degree:12 ~chain_fraction:0.60 ()

let as6461 () =
  Generator.pref_attach
    ~rng:(Rng.create 11000073L)
    ~nodes:138 ~edges:372 ~max_degree:20 ~chain_fraction:0.40 ()

let ta2 () =
  Generator.waxman
    ~rng:(Rng.create 55573L)
    ~nodes:65 ~edges:108 ~alpha:0.9 ~beta:0.14 ~max_degree:10 ()

let by_name name =
  let canonical = String.lowercase_ascii name in
  match canonical with
  | "as1221" | "1221" -> as1221 ()
  | "as3257" | "3257" -> as3257 ()
  | "as3967" | "3967" -> as3967 ()
  | "as6461" | "6461" -> as6461 ()
  | "ta2" -> ta2 ()
  | _ -> invalid_arg ("As_presets.by_name: unknown topology " ^ name)

let all () =
  [
    ("AS1221", as1221 ());
    ("AS3257", as3257 ());
    ("AS3967", as3967 ());
    ("AS6461", as6461 ());
    ("TA2", ta2 ());
  ]
