lib/topology/weights.mli: Graph Lipsin_util
