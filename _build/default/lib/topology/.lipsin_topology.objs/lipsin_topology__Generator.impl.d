lib/topology/generator.ml: Array Fun Graph Lipsin_util List
