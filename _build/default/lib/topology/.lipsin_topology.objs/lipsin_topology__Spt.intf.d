lib/topology/spt.mli: Graph
