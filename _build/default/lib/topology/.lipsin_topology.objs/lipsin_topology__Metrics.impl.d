lib/topology/metrics.ml: Array Format Graph Hashtbl List Option Spt
