lib/topology/generator.mli: Graph Lipsin_util
