lib/topology/spt.ml: Array Graph Hashtbl List Queue
