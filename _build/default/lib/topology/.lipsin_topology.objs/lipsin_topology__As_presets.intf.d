lib/topology/as_presets.mli: Graph
