lib/topology/as_presets.ml: Generator Lipsin_util String
