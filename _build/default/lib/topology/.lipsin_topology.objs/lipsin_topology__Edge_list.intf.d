lib/topology/edge_list.mli: Graph
