lib/topology/edge_list.ml: Buffer Fun Graph In_channel List Printf String
