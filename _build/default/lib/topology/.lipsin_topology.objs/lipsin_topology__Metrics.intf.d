lib/topology/metrics.mli: Format Graph
