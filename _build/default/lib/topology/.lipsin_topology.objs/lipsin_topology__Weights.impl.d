lib/topology/weights.ml: Array Graph Hashtbl Lipsin_util List
