(** Network graphs of unidirectional links.

    LIPSIN names links, not nodes, so the graph exposes *directed* links
    as first-class values: an undirected adjacency between nodes u and v
    is stored as the two links u→v and v→u, each with its own dense
    index (used to key LIT assignments, forwarding tables and
    simulation-side accounting).

    Nodes are dense integers 0..n-1.  Self-loops and parallel edges are
    rejected; the graphs the paper evaluates (Rocketfuel/SNDlib router
    topologies) have neither. *)

type node = int

type link = {
  src : node;
  dst : node;
  index : int;  (** Dense id, unique per directed link, 0..link_count-1. *)
}

type t

val create : nodes:int -> t
(** [create ~nodes] makes an edgeless graph over nodes 0..nodes-1.
    @raise Invalid_argument if [nodes <= 0]. *)

val add_edge : t -> node -> node -> unit
(** Adds the undirected edge u—v, i.e. both directed links.  The link
    u→v gets the next free even-ish index; indices are assigned in call
    order.  @raise Invalid_argument on self-loop, duplicate edge, or
    node out of range. *)

val node_count : t -> int

val link_count : t -> int
(** Number of *directed* links (twice the undirected edge count). *)

val edge_count : t -> int
(** Number of undirected edges. *)

val has_edge : t -> node -> node -> bool

val out_links : t -> node -> link list
(** Links with [src] = the node, in insertion order. *)

val out_degree : t -> node -> int

val neighbors : t -> node -> node list

val links : t -> link array
(** All directed links, indexed by [link.index] (fresh array, shared
    link values). *)

val link : t -> int -> link
(** Link by dense index.  @raise Invalid_argument if out of range. *)

val find_link : t -> src:node -> dst:node -> link option

val reverse_link : t -> link -> link
(** The opposite direction of the same physical link. *)

val iter_links : t -> (link -> unit) -> unit

val fold_nodes : t -> init:'a -> f:('a -> node -> 'a) -> 'a

val pp : Format.formatter -> t -> unit
(** One line: nodes/links counts. *)
