(** Graph characterization — the quantities of the paper's Table 1. *)

type t = {
  nodes : int;
  edges : int;      (** Undirected edge count ("Links" in Table 1). *)
  diameter : int;   (** Max eccentricity over the (connected) graph. *)
  radius : int;     (** Min eccentricity. *)
  avg_degree : float;
  max_degree : int;
}

val compute : Graph.t -> t
(** All-pairs BFS; fine for the metropolitan-scale graphs evaluated.
    @raise Invalid_argument if the graph is disconnected (diameter
    undefined). *)

val eccentricity : Graph.t -> Graph.node -> int
(** Longest shortest path out of the node.
    @raise Invalid_argument if some node is unreachable. *)

val degree_histogram : Graph.t -> (int * int) list
(** [(degree, #nodes)] pairs, ascending by degree. *)

val pp : Format.formatter -> t -> unit
val pp_row : Format.formatter -> string * t -> unit
(** One Table 1 row: name, nodes, links, diameter, radius, avg (max)
    degree. *)
