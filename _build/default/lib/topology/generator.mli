(** Synthetic router-level topologies.

    The paper evaluates on Rocketfuel intra-domain maps (AS 1221, 3257,
    3967, 6461) and SNDlib's TA2.  That data is not redistributable
    here, so we generate graphs that match the published Table 1
    statistics — node count, link count, diameter, radius, degree
    profile — which are the properties the zFilter results actually
    depend on (tree depth and size, and the out-degree sets membership
    tests run against).  See DESIGN.md "Substitutions".

    Both generators always return connected graphs and are
    deterministic in the given generator state. *)

val pref_attach :
  rng:Lipsin_util.Rng.t ->
  nodes:int ->
  edges:int ->
  max_degree:int ->
  ?chain_fraction:float ->
  unit ->
  Graph.t
(** Preferential-attachment ISP-like graph: a spanning backbone built by
    degree-proportional attachment (producing the hub structure of
    router-level maps, capped at [max_degree]), with [chain_fraction]
    of the nodes appended as degree-2 chains off the periphery (the
    long access chains that give Rocketfuel maps their 8–10 hop
    diameters), then degree-proportional extra edges up to [edges].
    @raise Invalid_argument if [edges < nodes - 1] or parameters are
    infeasible under the degree cap. *)

val ring : nodes:int -> Graph.t
(** A cycle.  @raise Invalid_argument if [nodes < 3]. *)

val grid : rows:int -> cols:int -> Graph.t
(** A rows × cols mesh (node r*cols+c).  @raise Invalid_argument unless
    both are ≥ 1 and the result has ≥ 2 nodes. *)

type fat_tree = {
  graph : Graph.t;
  hosts : Graph.node list;     (** Leaf hosts, ascending. *)
  switches : Graph.node list;  (** Core + aggregation + edge switches. *)
}

val fat_tree : k:int -> fat_tree
(** A k-ary fat-tree data-center fabric (k even, ≥ 2): (k/2)² cores,
    k pods of k/2 aggregation + k/2 edge switches, (k/2)² hosts per
    pod... scaled-down variant with k/2 hosts per edge switch.
    @raise Invalid_argument if [k] is odd or < 2. *)

val waxman :
  rng:Lipsin_util.Rng.t ->
  nodes:int ->
  edges:int ->
  ?alpha:float ->
  ?beta:float ->
  max_degree:int ->
  unit ->
  Graph.t
(** Waxman geometric graph (nodes uniform in the unit square, edge
    probability α·exp(−dist/βL)), forced connected by a
    nearest-neighbour spanning pass; models the planar, meshy SNDlib
    TA2 reference network. *)
