(** Plain-text edge-list serialization.

    Format: first line [nodes <n>], then one [<u> <v>] line per
    undirected edge, in insertion order.  Lines starting with [#] and
    blank lines are ignored on input.  This lets users bring their own
    topologies (e.g. actual Rocketfuel maps) to the CLI and examples. *)

val to_string : Graph.t -> string

val of_string : string -> Graph.t
(** @raise Invalid_argument on malformed input (missing header, node out
    of range, duplicate edge, self-loop). *)

val save : Graph.t -> string -> unit
(** [save g path] writes [to_string g] to [path]. *)

val load : string -> Graph.t
(** [load path] parses the file at [path].
    @raise Sys_error on I/O failure, [Invalid_argument] on bad data. *)
