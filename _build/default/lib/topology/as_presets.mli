(** The five evaluation topologies of the paper's Table 1, regenerated.

    Each preset is a deterministic generator call (fixed seed and tuning
    constants) whose output matches the published node/link counts
    exactly and the diameter/radius/degree figures closely; the Table 1
    reproduction (`lipsin_cli table1`) prints the achieved values next
    to the paper's. *)

type spec = {
  name : string;
  nodes : int;   (** Paper value. *)
  edges : int;   (** Paper "Links" value (undirected). *)
  diameter : int;
  radius : int;
  avg_degree : int;
  max_degree : int;
}

val as1221 : unit -> Graph.t
val as3257 : unit -> Graph.t
val as3967 : unit -> Graph.t
val as6461 : unit -> Graph.t
val ta2 : unit -> Graph.t

val by_name : string -> Graph.t
(** Accepts "AS1221", "1221", "TA2", case-insensitive.
    @raise Invalid_argument for unknown names. *)

val all : unit -> (string * Graph.t) list
(** All five, in the paper's Table 1 order. *)

val paper_table1 : spec list
(** The published Table 1 values, for side-by-side reporting. *)
