(** Weighted shortest paths.

    The Rocketfuel data the paper simulates over ships with inferred
    link weights ("weights-dist"); IGP costs shape the real shortest
    paths.  This module carries per-link weights and computes Dijkstra
    trees with deterministic tie-breaking, mirroring {!Spt}'s unweighted
    API so experiments can run over either. *)

type t
(** Weights for every directed link of one graph. *)

val uniform : Graph.t -> float -> t
(** Every link the same weight.  @raise Invalid_argument if not
    positive. *)

val random :
  Graph.t -> Lipsin_util.Rng.t -> min:float -> max:float -> t
(** Independent uniform weights in \[min, max\]; both directions of a
    physical link get the SAME weight (symmetric IGP costs).
    @raise Invalid_argument unless [0 < min <= max]. *)

val of_function : Graph.t -> (Graph.link -> float) -> t
(** @raise Invalid_argument if any weight is not positive. *)

val weight : t -> Graph.link -> float

val dijkstra : t -> root:Graph.node -> float array * int array
(** (distances, parents): [parents.(v)] = predecessor node, -1 for the
    root/unreachable; distances are [infinity] where unreachable.
    Ties broken towards the lower parent id (deterministic). *)

val path_to : t -> parents:int array -> Graph.node -> Graph.link list
(** Directed links root → node, like {!Spt.path_to}.
    @raise Invalid_argument if the parent chain is broken. *)

val delivery_tree :
  t -> root:Graph.node -> subscribers:Graph.node list -> Graph.link list
(** Union of weighted shortest paths, deduplicated.
    @raise Invalid_argument if a subscriber is unreachable. *)

val tree_cost : t -> Graph.link list -> float
(** Sum of link weights. *)
