type t = {
  nodes : int;
  edges : int;
  diameter : int;
  radius : int;
  avg_degree : float;
  max_degree : int;
}

let eccentricity g u =
  let dist = Spt.distances g ~root:u in
  Array.fold_left
    (fun acc d ->
      if d = max_int then invalid_arg "Metrics.eccentricity: graph disconnected"
      else max acc d)
    0 dist

let compute g =
  let n = Graph.node_count g in
  let diameter = ref 0 and radius = ref max_int in
  for u = 0 to n - 1 do
    let e = eccentricity g u in
    if e > !diameter then diameter := e;
    if e < !radius then radius := e
  done;
  let max_degree =
    Graph.fold_nodes g ~init:0 ~f:(fun acc u -> max acc (Graph.out_degree g u))
  in
  {
    nodes = n;
    edges = Graph.edge_count g;
    diameter = !diameter;
    radius = !radius;
    avg_degree = float_of_int (Graph.link_count g) /. float_of_int n;
    max_degree;
  }

let degree_histogram g =
  let table = Hashtbl.create 16 in
  for u = 0 to Graph.node_count g - 1 do
    let d = Graph.out_degree g u in
    Hashtbl.replace table d (1 + Option.value ~default:0 (Hashtbl.find_opt table d))
  done;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let pp ppf t =
  Format.fprintf ppf
    "nodes=%d edges=%d diameter=%d radius=%d avg_degree=%.1f max_degree=%d"
    t.nodes t.edges t.diameter t.radius t.avg_degree t.max_degree

let pp_row ppf (name, t) =
  Format.fprintf ppf "%-8s %5d %6d %9d %7d %5.0f (%d)" name t.nodes t.edges
    t.diameter t.radius t.avg_degree t.max_degree
