module Rng = Lipsin_util.Rng

(* Draw a node with probability proportional to degree + 1, honouring a
   degree cap and an optional exclusion.  Returns -1 when no node is
   eligible. *)
let pick_preferential rng g ~max_degree ~exclude ~limit =
  let n = min limit (Graph.node_count g) in
  let total = ref 0 in
  for u = 0 to n - 1 do
    if u <> exclude && Graph.out_degree g u < max_degree then
      total := !total + Graph.out_degree g u + 1
  done;
  if !total = 0 then -1
  else begin
    let target = Rng.int rng !total in
    let acc = ref 0 and found = ref (-1) and u = ref 0 in
    while !found = -1 && !u < n do
      if !u <> exclude && Graph.out_degree g !u < max_degree then begin
        acc := !acc + Graph.out_degree g !u + 1;
        if target < !acc then found := !u
      end;
      incr u
    done;
    !found
  end

let pref_attach ~rng ~nodes ~edges ~max_degree ?(chain_fraction = 0.0) () =
  if edges < nodes - 1 then
    invalid_arg "Generator.pref_attach: need at least nodes-1 edges";
  if max_degree < 2 then invalid_arg "Generator.pref_attach: max_degree < 2";
  if chain_fraction < 0.0 || chain_fraction >= 1.0 then
    invalid_arg "Generator.pref_attach: chain_fraction outside [0,1)";
  let g = Graph.create ~nodes in
  let chain_nodes = int_of_float (chain_fraction *. float_of_int nodes) in
  let core_nodes = nodes - chain_nodes in
  if core_nodes < 2 then invalid_arg "Generator.pref_attach: too few core nodes";
  (* Spanning backbone over the core by preferential attachment. *)
  Graph.add_edge g 0 1;
  for v = 2 to core_nodes - 1 do
    let target = pick_preferential rng g ~max_degree ~exclude:v ~limit:v in
    if target = -1 then invalid_arg "Generator.pref_attach: degree cap infeasible";
    Graph.add_edge g v target
  done;
  (* Access chains: each chain node extends a random low-degree node,
     stretching the diameter the way Rocketfuel access links do. *)
  let tail = ref (core_nodes - 1) in
  for v = core_nodes to nodes - 1 do
    let anchor =
      if v > core_nodes && Rng.float rng 1.0 < 0.7 then !tail
      else begin
        (* bias towards the periphery: sample a few nodes, keep the one
           with the lowest degree *)
        let best = ref (Rng.int rng v) in
        for _ = 1 to 3 do
          let c = Rng.int rng v in
          if Graph.out_degree g c < Graph.out_degree g !best then best := c
        done;
        !best
      end
    in
    let anchor =
      if Graph.out_degree g anchor >= max_degree then
        pick_preferential rng g ~max_degree ~exclude:v ~limit:v
      else anchor
    in
    if anchor = -1 then invalid_arg "Generator.pref_attach: degree cap infeasible";
    Graph.add_edge g v anchor;
    tail := v
  done;
  (* Extra edges, degree-proportional endpoints. *)
  let remaining = ref (edges - (nodes - 1)) in
  let attempts = ref 0 in
  let max_attempts = 200 * edges in
  while !remaining > 0 && !attempts < max_attempts do
    incr attempts;
    let u = pick_preferential rng g ~max_degree ~exclude:(-1) ~limit:nodes in
    if u <> -1 then begin
      let v = pick_preferential rng g ~max_degree ~exclude:u ~limit:nodes in
      if v <> -1 && not (Graph.has_edge g u v) then begin
        Graph.add_edge g u v;
        decr remaining
      end
    end
  done;
  if !remaining > 0 then
    invalid_arg "Generator.pref_attach: could not place all edges under degree cap";
  g

let ring ~nodes =
  if nodes < 3 then invalid_arg "Generator.ring: need at least 3 nodes";
  let g = Graph.create ~nodes in
  for v = 0 to nodes - 1 do
    Graph.add_edge g v ((v + 1) mod nodes)
  done;
  g

let grid ~rows ~cols =
  if rows < 1 || cols < 1 || rows * cols < 2 then
    invalid_arg "Generator.grid: need at least 2 nodes";
  let g = Graph.create ~nodes:(rows * cols) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let v = (r * cols) + c in
      if c + 1 < cols then Graph.add_edge g v (v + 1);
      if r + 1 < rows then Graph.add_edge g v (v + cols)
    done
  done;
  g

type fat_tree = {
  graph : Graph.t;
  hosts : Graph.node list;
  switches : Graph.node list;
}

let fat_tree ~k =
  if k < 2 || k mod 2 <> 0 then invalid_arg "Generator.fat_tree: k must be even and >= 2";
  let half = k / 2 in
  let cores = half * half in
  let pods = k in
  let n_agg = pods * half in
  let n_edge = pods * half in
  let n_hosts = n_edge * half in
  let g = Graph.create ~nodes:(cores + n_agg + n_edge + n_hosts) in
  let agg p i = cores + (p * half) + i in
  let edge p i = cores + n_agg + (p * half) + i in
  let host e h = cores + n_agg + n_edge + (e * half) + h in
  for p = 0 to pods - 1 do
    for a = 0 to half - 1 do
      (* Aggregation switch a of pod p uplinks to core group a. *)
      for c = 0 to half - 1 do
        let core = (a * half) + c in
        if not (Graph.has_edge g (agg p a) core) then
          Graph.add_edge g (agg p a) core
      done;
      for e = 0 to half - 1 do
        Graph.add_edge g (agg p a) (edge p e)
      done
    done;
    for e = 0 to half - 1 do
      for h = 0 to half - 1 do
        Graph.add_edge g (edge p e) (host ((p * half) + e) h)
      done
    done
  done;
  let switches = List.init (cores + n_agg + n_edge) Fun.id in
  let hosts =
    List.init n_hosts (fun i -> cores + n_agg + n_edge + i)
  in
  { graph = g; hosts; switches }

let waxman ~rng ~nodes ~edges ?(alpha = 0.9) ?(beta = 0.18) ~max_degree () =
  if edges < nodes - 1 then invalid_arg "Generator.waxman: need at least nodes-1 edges";
  let xs = Array.init nodes (fun _ -> Rng.float rng 1.0) in
  let ys = Array.init nodes (fun _ -> Rng.float rng 1.0) in
  let dist u v = sqrt (((xs.(u) -. xs.(v)) ** 2.0) +. ((ys.(u) -. ys.(v)) ** 2.0)) in
  let g = Graph.create ~nodes in
  (* Nearest-neighbour spanning pass keeps the graph connected and
     planar-ish, as in the SNDlib reference networks. *)
  let in_tree = Array.make nodes false in
  in_tree.(0) <- true;
  for _ = 1 to nodes - 1 do
    let best = ref (-1, -1, infinity) in
    for v = 0 to nodes - 1 do
      if not in_tree.(v) then
        for u = 0 to nodes - 1 do
          if in_tree.(u) && Graph.out_degree g u < max_degree then begin
            let d = dist u v in
            let _, _, bd = !best in
            if d < bd then best := (u, v, d)
          end
        done
    done;
    let u, v, _ = !best in
    if u = -1 then invalid_arg "Generator.waxman: degree cap infeasible";
    Graph.add_edge g u v;
    in_tree.(v) <- true
  done;
  (* Waxman edges until the target count; the scale L is the max
     pairwise distance (bounded by sqrt 2 on the unit square). *)
  let scale = sqrt 2.0 in
  let remaining = ref (edges - (nodes - 1)) in
  let attempts = ref 0 in
  let max_attempts = 500 * edges in
  while !remaining > 0 && !attempts < max_attempts do
    incr attempts;
    let u = Rng.int rng nodes and v = Rng.int rng nodes in
    if
      u <> v
      && (not (Graph.has_edge g u v))
      && Graph.out_degree g u < max_degree
      && Graph.out_degree g v < max_degree
      && Rng.float rng 1.0 < alpha *. exp (-.dist u v /. (beta *. scale))
    then begin
      Graph.add_edge g u v;
      decr remaining
    end
  done;
  if !remaining > 0 then
    invalid_arg "Generator.waxman: could not place all edges under degree cap";
  g
