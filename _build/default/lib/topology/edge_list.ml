let to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "nodes %d\n" (Graph.node_count g));
  Graph.iter_links g (fun l ->
      (* Emit each undirected edge once, in the canonical direction it
         was inserted (the lower-index directed link of the pair). *)
      if l.Graph.index < (Graph.reverse_link g l).Graph.index then
        Buffer.add_string buf (Printf.sprintf "%d %d\n" l.Graph.src l.Graph.dst));
  Buffer.contents buf

let of_string s =
  let lines = String.split_on_char '\n' s in
  let meaningful =
    List.filter
      (fun line ->
        let trimmed = String.trim line in
        trimmed <> "" && not (String.length trimmed > 0 && trimmed.[0] = '#'))
      lines
  in
  match meaningful with
  | [] -> invalid_arg "Edge_list.of_string: empty input"
  | header :: rest ->
    let nodes =
      match String.split_on_char ' ' (String.trim header) with
      | [ "nodes"; n ] -> (
        match int_of_string_opt n with
        | Some n when n > 0 -> n
        | _ -> invalid_arg "Edge_list.of_string: bad node count")
      | _ -> invalid_arg "Edge_list.of_string: missing 'nodes <n>' header"
    in
    let g = Graph.create ~nodes in
    let parse_edge line =
      match
        String.trim line |> String.split_on_char ' '
        |> List.filter (fun tok -> tok <> "")
      with
      | [ u; v ] -> (
        match (int_of_string_opt u, int_of_string_opt v) with
        | Some u, Some v -> Graph.add_edge g u v
        | _ -> invalid_arg ("Edge_list.of_string: bad edge line: " ^ line))
      | _ -> invalid_arg ("Edge_list.of_string: bad edge line: " ^ line)
    in
    List.iter parse_edge rest;
    g

let save g path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (In_channel.input_all ic))
