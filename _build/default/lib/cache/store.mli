(** A node's opportunistic packet cache (Sec. 5.4).

    "Combining data-oriented naming and caching, we can turn the
    traditional packet queues and the sibling recipient memories into
    opportunistic indexable caches, allowing, for example, any node to
    ask for recent copies of any missed or garbled packets."

    A bounded LRU keyed by topic id: whatever publications recently
    passed through the node are retrievable by name. *)

type t

val create : capacity:int -> t
(** @raise Invalid_argument if [capacity <= 0]. *)

val capacity : t -> int
val size : t -> int

val insert : t -> topic:int64 -> payload:string -> unit
(** Caches (or refreshes) the newest payload for the topic, evicting
    the least-recently-used entry when full. *)

val lookup : t -> topic:int64 -> string option
(** Refreshes recency on hit. *)

val mem : t -> topic:int64 -> bool
(** Does not refresh recency. *)

val clear : t -> unit
