lib/cache/store.mli:
