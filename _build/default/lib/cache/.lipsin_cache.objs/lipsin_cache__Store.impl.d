lib/cache/store.ml: Hashtbl
