lib/cache/network_cache.mli: Lipsin_topology Store
