lib/cache/network_cache.ml: Array Lipsin_topology List Store
