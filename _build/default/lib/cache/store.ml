(* LRU over a doubly-linked recency list + hashtable.  Capacities here
   are packet-queue sized (tens to thousands), but keep it O(1)
   anyway. *)

type entry = {
  topic : int64;
  mutable payload : string;
  mutable prev : entry option;  (* towards most-recent *)
  mutable next : entry option;  (* towards least-recent *)
}

type t = {
  capacity : int;
  table : (int64, entry) Hashtbl.t;
  mutable head : entry option;  (* most recent *)
  mutable tail : entry option;  (* least recent *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Store.create: capacity must be positive";
  { capacity; table = Hashtbl.create (2 * capacity); head = None; tail = None }

let capacity t = t.capacity
let size t = Hashtbl.length t.table

let unlink t e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.head <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> t.tail <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.next <- t.head;
  e.prev <- None;
  (match t.head with Some h -> h.prev <- Some e | None -> t.tail <- Some e);
  t.head <- Some e

let touch t e =
  if t.head != Some e then begin
    unlink t e;
    push_front t e
  end

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some e ->
    unlink t e;
    Hashtbl.remove t.table e.topic

let insert t ~topic ~payload =
  match Hashtbl.find_opt t.table topic with
  | Some e ->
    e.payload <- payload;
    touch t e
  | None ->
    if Hashtbl.length t.table >= t.capacity then evict_lru t;
    let e = { topic; payload; prev = None; next = None } in
    Hashtbl.replace t.table topic e;
    push_front t e

let lookup t ~topic =
  match Hashtbl.find_opt t.table topic with
  | Some e ->
    touch t e;
    Some e.payload
  | None -> None

let mem t ~topic = Hashtbl.mem t.table topic

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None
