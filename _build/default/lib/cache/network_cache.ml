module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt

type t = { graph : Graph.t; stores : Store.t array }

let create graph ~capacity =
  {
    graph;
    stores = Array.init (Graph.node_count graph) (fun _ -> Store.create ~capacity);
  }

let graph t = t.graph

let on_delivery t ~tree ~topic ~payload =
  List.iter
    (fun node -> Store.insert t.stores.(node) ~topic ~payload)
    (Spt.tree_nodes tree)

let store_at t node = t.stores.(node)

type fetched = {
  payload : string;
  served_by : Graph.node;
  hops : int;
  full_hops : int;
}

let fetch t ~subscriber ~publisher ~topic =
  let parents = Spt.bfs_parents t.graph ~root:publisher in
  if parents.(subscriber) = -1 && subscriber <> publisher then None
  else begin
    (* The path publisher -> subscriber, walked from the subscriber
       end. *)
    let path = Spt.path_to t.graph parents subscriber in
    let towards_publisher =
      subscriber :: List.rev_map (fun l -> l.Graph.src) path
    in
    let full_hops = List.length path in
    let rec probe hops = function
      | [] -> None
      | node :: rest -> (
        match Store.lookup t.stores.(node) ~topic with
        | Some payload -> Some { payload; served_by = node; hops; full_hops }
        | None -> probe (hops + 1) rest)
    in
    probe 0 towards_publisher
  end
