(** Network-wide opportunistic caching (Sec. 5.4).

    Every node that forwards a publication keeps a copy in its packet
    cache; a subscriber that later asks for the data by topic name
    walks its shortest path towards the publisher and is served by the
    first cache hit, decoupling it from the publisher in time — the
    "in-network caching" leg of the pub/sub triad. *)

type t

val create : Lipsin_topology.Graph.t -> capacity:int -> t
(** One {!Store} of [capacity] entries per node. *)

val graph : t -> Lipsin_topology.Graph.t

val on_delivery :
  t -> tree:Lipsin_topology.Graph.link list -> topic:int64 -> payload:string -> unit
(** Opportunistic fill: every node the delivery tree touches caches the
    publication. *)

val store_at : t -> Lipsin_topology.Graph.node -> Store.t

type fetched = {
  payload : string;
  served_by : Lipsin_topology.Graph.node;  (** Cache (or publisher) that answered. *)
  hops : int;       (** Request hops actually travelled. *)
  full_hops : int;  (** Hops to the publisher — the cost without caching. *)
}

val fetch :
  t ->
  subscriber:Lipsin_topology.Graph.node ->
  publisher:Lipsin_topology.Graph.node ->
  topic:int64 ->
  fetched option
(** Walks the shortest path subscriber → publisher, stopping at the
    first cache holding the topic; [None] when nobody (not even the
    path's publisher end) has it.  The subscriber's own cache counts
    (0 hops). *)
