(** LIPSIN as a forwarding fabric under TCP/IP (Sec. 2.4).

    "From the IP point of view, LIPSIN can be considered as another
    underlying forwarding fabric, similar to Ethernet or MPLS.  When an
    IP packet enters a LIPSIN fabric, the edge router prepends a header
    containing a suitable zFilter; the header is removed at the egress
    edge.  For unicast traffic, the forwarding entry simply contains a
    pre-computed zFilter [...] For SSM, the ingress router of the
    source needs to keep track of the joins received [...] it can
    construct a suitable zFilter from the combination of physical or
    virtual links."

    This module models exactly that: per-ingress LPM tables whose
    entries carry pre-computed zFilters to the route's egress edge, and
    per-(source, group) SSM state held only at the ingress. *)

type t

val create :
  ?params:Lipsin_bloom.Lit.params ->
  ?seed:int ->
  Lipsin_topology.Graph.t ->
  edges:Lipsin_topology.Graph.node list ->
  t
(** A LIPSIN domain whose listed nodes are IP edge routers.
    @raise Invalid_argument on an empty or out-of-range edge list. *)

val edges : t -> Lipsin_topology.Graph.node list

val add_unicast_route :
  t -> ingress:Lipsin_topology.Graph.node -> prefix:int32 -> len:int ->
  egress:Lipsin_topology.Graph.node -> unit
(** Installs prefix → egress at the ingress edge, pre-computing the
    zFilter for the ingress → egress path.
    @raise Invalid_argument if either node is not an edge router. *)

type unicast_result = {
  egress : Lipsin_topology.Graph.node;
  delivered : bool;
  hops : int;
}

val forward_unicast :
  t -> ingress:Lipsin_topology.Graph.node -> dst:int32 -> unicast_result option
(** One IP packet through the fabric: LPM at the ingress picks the
    entry, the pre-computed zFilter carries the packet, the egress
    strips the header.  [None] when no route matches. *)

val ssm_join :
  t ->
  group:int ->
  source_ingress:Lipsin_topology.Graph.node ->
  egress:Lipsin_topology.Graph.node ->
  unit
(** Registers the egress edge's interest in (source, group); only the
    ingress keeps state.  Idempotent. *)

val ssm_leave :
  t -> group:int -> source_ingress:Lipsin_topology.Graph.node ->
  egress:Lipsin_topology.Graph.node -> unit

type ssm_result = {
  reached : Lipsin_topology.Graph.node list;  (** Egresses that got the packet. *)
  missed : Lipsin_topology.Graph.node list;
  traversals : int;
}

val forward_ssm :
  t -> group:int -> source_ingress:Lipsin_topology.Graph.node ->
  (ssm_result, string) result
(** Multicasts to the group's current egress set with a zFilter built
    from the joins; [Error] when the group has no members or the tree
    overfills every candidate. *)

val ssm_state_entries : t -> int
(** Total (source, group) state entries across ALL routers — for
    LIPSIN-under-IP this counts ingress edges only, the "typically less
    state than in current forwarding fabrics" claim. *)
