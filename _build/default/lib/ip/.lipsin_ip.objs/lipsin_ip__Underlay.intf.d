lib/ip/underlay.mli: Lipsin_bloom Lipsin_topology
