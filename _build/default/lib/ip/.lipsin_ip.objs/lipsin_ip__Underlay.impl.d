lib/ip/underlay.ml: Array Hashtbl Lipsin_baseline Lipsin_bloom Lipsin_core Lipsin_sim Lipsin_topology Lipsin_util List
