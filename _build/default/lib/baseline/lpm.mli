(** Longest-prefix-match IP forwarding — the Table 5 comparator.

    A binary trie over 32-bit IPv4 prefixes, as a conventional software
    router would use.  The paper pings through "the reference IP router
    with five entries in the forwarding table"; `lipsin_cli table5` and
    the bench suite reproduce that comparison against the zFilter
    decision. *)

type t

val create : unit -> t

val add : t -> prefix:int32 -> len:int -> next_hop:int -> unit
(** Installs a route.  Bits of [prefix] below the mask are ignored.
    Re-adding a prefix overwrites its next hop.
    @raise Invalid_argument if [len] outside \[0, 32\]. *)

val lookup : t -> int32 -> int option
(** Longest matching prefix's next hop. *)

val remove : t -> prefix:int32 -> len:int -> bool
(** [true] if a route was present and removed. *)

val size : t -> int
(** Number of installed routes. *)

val reference_fib : unit -> t
(** The 5-entry table used by the Table 5 experiment: a default route
    plus /8, /16, /24 and /32 entries. *)
