module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt

let link_uses g ~root ~subscribers =
  let dist = Spt.distances g ~root in
  List.fold_left
    (fun acc s ->
      if s = root then acc
      else if dist.(s) = max_int then
        invalid_arg "Unicast.link_uses: subscriber unreachable"
      else acc + dist.(s))
    0 subscribers

let efficiency g ~root ~subscribers =
  let uses = link_uses g ~root ~subscribers in
  if uses = 0 then 1.0
  else
    let tree = Spt.delivery_tree g ~root ~subscribers in
    float_of_int (List.length tree) /. float_of_int uses
