(** Xcast header-cost model (related work, Sec. 7).

    Xcast (RFC 5058) carries the explicit destination list in the
    packet; every router parses the list, partitions it by next hop and
    rewrites the header.  The model quantifies the two costs the paper
    contrasts with the fixed-size zFilter: header bytes growing
    linearly in the destination count, and per-hop rewrite work. *)

val header_bytes : destinations:int -> int
(** 4 bytes of fixed header plus a 4-byte address per destination. *)

val zfilter_header_bytes : m:int -> int
(** The LIPSIN equivalent: the in-packet filter plus 5 fixed bytes
    (matches [Lipsin_packet.Header.header_size]). *)

val crossover_destinations : m:int -> int
(** Smallest destination count at which the Xcast header becomes
    larger than the zFilter header. *)

val delivery_header_cost :
  Lipsin_topology.Graph.t ->
  root:Lipsin_topology.Graph.node ->
  subscribers:Lipsin_topology.Graph.node list ->
  int
(** Total header bytes transmitted over all links of an Xcast
    delivery: on each tree link the header carries only the
    destinations downstream of that link. *)

val rewrite_operations :
  Lipsin_topology.Graph.t ->
  root:Lipsin_topology.Graph.node ->
  subscribers:Lipsin_topology.Graph.node list ->
  int
(** Number of per-router destination partition steps (one per
    destination per traversed branching router). *)
