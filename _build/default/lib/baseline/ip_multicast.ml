module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt

type group = { source : Graph.node; group_id : int }

module Group_map = Map.Make (struct
  type t = group

  let compare = compare
end)

module Node_set = Set.Make (Int)

type t = {
  graph : Graph.t;
  mutable members : Node_set.t Group_map.t;
}

let create graph = { graph; members = Group_map.empty }

let receivers_set t group =
  Option.value ~default:Node_set.empty (Group_map.find_opt group t.members)

let join t group ~receiver =
  t.members <-
    Group_map.add group (Node_set.add receiver (receivers_set t group)) t.members

let leave t group ~receiver =
  let remaining = Node_set.remove receiver (receivers_set t group) in
  t.members <-
    (if Node_set.is_empty remaining then Group_map.remove group t.members
     else Group_map.add group remaining t.members)

let receivers t group = Node_set.elements (receivers_set t group)

let tree_links t group =
  let members =
    Node_set.elements (Node_set.remove group.source (receivers_set t group))
  in
  if members = [] then []
  else Spt.delivery_tree t.graph ~root:group.source ~subscribers:members

(* A router holds (S,G) state when it forwards for the group: it is the
   source of some tree link, or a pure receiver leaf (IGMP state). *)
let routers_with_state t group =
  let links = tree_links t group in
  let nodes = Spt.tree_nodes links in
  List.sort_uniq compare (group.source :: nodes)

let state_at t node =
  Group_map.fold
    (fun group _ acc ->
      if List.mem node (routers_with_state t group) then acc + 1 else acc)
    t.members 0

let total_state t =
  Group_map.fold
    (fun group _ acc -> acc + List.length (routers_with_state t group))
    t.members 0
