type node = {
  mutable next_hop : int option;
  mutable zero : node option;
  mutable one : node option;
}

type t = { root : node; mutable routes : int }

let fresh_node () = { next_hop = None; zero = None; one = None }
let create () = { root = fresh_node (); routes = 0 }

let bit_at addr i = Int32.logand (Int32.shift_right_logical addr (31 - i)) 1l = 1l

let check_len len =
  if len < 0 || len > 32 then invalid_arg "Lpm: prefix length outside [0,32]"

let add t ~prefix ~len ~next_hop =
  check_len len;
  let rec descend node i =
    if i = len then begin
      if node.next_hop = None then t.routes <- t.routes + 1;
      node.next_hop <- Some next_hop
    end
    else if bit_at prefix i then begin
      (match node.one with None -> node.one <- Some (fresh_node ()) | Some _ -> ());
      descend (Option.get node.one) (i + 1)
    end
    else begin
      (match node.zero with None -> node.zero <- Some (fresh_node ()) | Some _ -> ());
      descend (Option.get node.zero) (i + 1)
    end
  in
  descend t.root 0

let lookup t addr =
  let rec descend node i best =
    let best = match node.next_hop with Some h -> Some h | None -> best in
    if i = 32 then best
    else
      let child = if bit_at addr i then node.one else node.zero in
      match child with None -> best | Some c -> descend c (i + 1) best
  in
  descend t.root 0 None

let remove t ~prefix ~len =
  check_len len;
  let rec descend node i =
    if i = len then
      match node.next_hop with
      | Some _ ->
        node.next_hop <- None;
        t.routes <- t.routes - 1;
        true
      | None -> false
    else
      let child = if bit_at prefix i then node.one else node.zero in
      match child with None -> false | Some c -> descend c (i + 1)
  in
  descend t.root 0

let size t = t.routes

let reference_fib () =
  let t = create () in
  add t ~prefix:0l ~len:0 ~next_hop:0;
  add t ~prefix:0x0A000000l ~len:8 ~next_hop:1;
  add t ~prefix:0xC0A80000l ~len:16 ~next_hop:2;
  add t ~prefix:0xC0A80100l ~len:24 ~next_hop:3;
  add t ~prefix:0xC0A80101l ~len:32 ~next_hop:4;
  t
