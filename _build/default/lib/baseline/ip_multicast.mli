(** Source-specific multicast (SSM) state model.

    The functional comparator of Sec. 2.4/7: SSM delivers on exactly
    the shortest-path tree (100% forwarding efficiency, zero false
    positives) but every on-tree router holds an (S, G) entry per
    group.  LIPSIN's stateless trees hold zero.  This model counts that
    state so experiments can put numbers on the trade-off for
    Zipf-distributed group populations. *)

type t

val create : Lipsin_topology.Graph.t -> t

type group = {
  source : Lipsin_topology.Graph.node;
  group_id : int;
}

val join :
  t -> group -> receiver:Lipsin_topology.Graph.node -> unit
(** Adds the receiver and installs (S,G) state along the shortest path
    towards the source's tree.  Idempotent. *)

val leave : t -> group -> receiver:Lipsin_topology.Graph.node -> unit
(** Removes the receiver and prunes state no longer on any member
    path. *)

val receivers : t -> group -> Lipsin_topology.Graph.node list

val state_at : t -> Lipsin_topology.Graph.node -> int
(** Number of (S,G) entries held by a router. *)

val total_state : t -> int
(** Sum over all routers — the forwarding state the network carries. *)

val tree_links : t -> group -> Lipsin_topology.Graph.link list
(** The current delivery tree of the group (empty when no
    receivers). *)
