module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt

let header_bytes ~destinations = 4 + (4 * destinations)
let zfilter_header_bytes ~m = 5 + ((m + 7) / 8)

let crossover_destinations ~m =
  let z = zfilter_header_bytes ~m in
  (* smallest n with 4 + 4n > z *)
  ((z - 4) / 4) + 1

(* For each tree link, the set of subscribers reached through it is the
   set whose root-path contains the link. *)
let downstream_counts g ~root ~subscribers =
  let parents = Spt.bfs_parents g ~root in
  let counts = Hashtbl.create 64 in
  List.iter
    (fun sub ->
      if sub <> root then
        List.iter
          (fun l ->
            Hashtbl.replace counts l.Graph.index
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts l.Graph.index)))
          (Spt.path_to g parents sub))
    subscribers;
  counts

let delivery_header_cost g ~root ~subscribers =
  let counts = downstream_counts g ~root ~subscribers in
  Hashtbl.fold (fun _ n acc -> acc + header_bytes ~destinations:n) counts 0

let rewrite_operations g ~root ~subscribers =
  let counts = downstream_counts g ~root ~subscribers in
  (* Each router receiving a header with n destinations performs n
     next-hop lookups to partition the list; receivers of each tree
     link do this once per packet. *)
  Hashtbl.fold (fun _ n acc -> acc + n) counts 0
