lib/baseline/lpm.ml: Int32 Option
