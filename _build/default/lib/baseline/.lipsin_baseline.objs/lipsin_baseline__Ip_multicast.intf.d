lib/baseline/ip_multicast.mli: Lipsin_topology
