lib/baseline/unicast.ml: Array Lipsin_topology List
