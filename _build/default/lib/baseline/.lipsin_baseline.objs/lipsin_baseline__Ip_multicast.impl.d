lib/baseline/ip_multicast.ml: Int Lipsin_topology List Map Option Set
