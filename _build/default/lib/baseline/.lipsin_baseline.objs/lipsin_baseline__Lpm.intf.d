lib/baseline/lpm.mli:
