lib/baseline/xcast.ml: Hashtbl Lipsin_topology List Option
