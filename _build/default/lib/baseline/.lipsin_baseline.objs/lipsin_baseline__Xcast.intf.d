lib/baseline/xcast.mli: Lipsin_topology
