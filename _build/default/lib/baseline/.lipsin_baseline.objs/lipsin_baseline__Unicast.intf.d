lib/baseline/unicast.mli: Lipsin_topology
