(** Multiple-unicast baseline (Sec. 4.2).

    Delivering the same publication by n separate unicasts re-uses the
    shared upstream links once per subscriber; the paper quotes 43%
    forwarding efficiency at 23 subscribers in AS3257 versus >82% for
    zFilters.  This module computes the exact unicast link usage on the
    same shortest paths the zFilter trees use. *)

val link_uses :
  Lipsin_topology.Graph.t ->
  root:Lipsin_topology.Graph.node ->
  subscribers:Lipsin_topology.Graph.node list ->
  int
(** Total link traversals of per-subscriber unicast delivery (the sum
    of path lengths). *)

val efficiency :
  Lipsin_topology.Graph.t ->
  root:Lipsin_topology.Graph.node ->
  subscribers:Lipsin_topology.Graph.node list ->
  float
(** Eq. 3 for multiple unicast: tree links / unicast traversals; 1.0
    with a single subscriber, decaying as paths overlap. *)
