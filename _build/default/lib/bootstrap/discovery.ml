module Graph = Lipsin_topology.Graph

type lsa = {
  origin : Graph.node;
  seq : int;
  neighbors : Graph.node list;  (* sorted *)
  is_rendezvous : bool;
}

type node_state = {
  lsdb : (Graph.node, lsa) Hashtbl.t;
  (* LSAs this node has accepted but not yet flooded onward. *)
  mutable pending : lsa list;
}

type t = {
  graph : Graph.t;
  states : node_state array;
  (* Physical liveness of links, by directed link index; both
     directions fail together. *)
  alive : bool array;
  mutable total_messages : int;
}

let live_neighbors t v =
  List.filter_map
    (fun l -> if t.alive.(l.Graph.index) then Some l.Graph.dst else None)
    (Graph.out_links t.graph v)

let originate t v ~rendezvous =
  let state = t.states.(v) in
  let seq =
    match Hashtbl.find_opt state.lsdb v with Some l -> l.seq + 1 | None -> 0
  in
  let lsa =
    {
      origin = v;
      seq;
      neighbors = List.sort compare (live_neighbors t v);
      is_rendezvous = List.mem v rendezvous;
    }
  in
  Hashtbl.replace state.lsdb v lsa;
  state.pending <- lsa :: state.pending

let create ?(rendezvous = []) graph =
  let n = Graph.node_count graph in
  let t =
    {
      graph;
      states =
        Array.init n (fun _ -> { lsdb = Hashtbl.create 16; pending = [] });
      alive = Array.make (Graph.link_count graph) true;
      total_messages = 0;
    }
  in
  for v = 0 to n - 1 do
    originate t v ~rendezvous
  done;
  t

(* Accept an LSA at a node: newer sequence wins; accepted LSAs queue
   for onward flooding. *)
let accept state lsa =
  let fresher =
    match Hashtbl.find_opt state.lsdb lsa.origin with
    | Some existing -> lsa.seq > existing.seq
    | None -> true
  in
  if fresher then begin
    Hashtbl.replace state.lsdb lsa.origin lsa;
    state.pending <- lsa :: state.pending
  end

let step t =
  (* Collect this round's floods first so an LSA travels exactly one
     hop per round (synchronous model). *)
  let outbox =
    Array.mapi
      (fun v state ->
        let msgs = state.pending in
        state.pending <- [];
        (v, msgs))
      t.states
  in
  let carried = ref 0 in
  Array.iter
    (fun (v, msgs) ->
      if msgs <> [] then
        List.iter
          (fun neighbor ->
            List.iter
              (fun lsa ->
                incr carried;
                accept t.states.(neighbor) lsa)
              msgs)
          (live_neighbors t v))
    outbox;
  t.total_messages <- t.total_messages + !carried;
  !carried

let converged t =
  let n = Graph.node_count t.graph in
  (* Convergence = every node holds every origin's authoritative
     (self-held) LSA. *)
  let ok = ref true in
  for v = 0 to n - 1 do
    for origin = 0 to n - 1 do
      let authoritative = Hashtbl.find_opt t.states.(origin).lsdb origin in
      let seen = Hashtbl.find_opt t.states.(v).lsdb origin in
      match (authoritative, seen) with
      | Some a, Some s when s.seq = a.seq && s.neighbors = a.neighbors -> ()
      | _ -> ok := false
    done
  done;
  !ok

let quiescent t =
  Array.for_all (fun state -> state.pending = []) t.states

let run ?max_rounds t =
  let limit =
    match max_rounds with Some r -> r | None -> 4 * Graph.node_count t.graph
  in
  (* Convergence alone is not enough: accepted-but-unflooded LSAs would
     still chatter on the next step, so drain to quiescence. *)
  let rec go rounds =
    if converged t && quiescent t then Ok rounds
    else if rounds >= limit then Error "discovery did not converge"
    else begin
      ignore (step t);
      go (rounds + 1)
    end
  in
  go 0

let messages_sent t = t.total_messages

let map_of t v =
  let n = Graph.node_count t.graph in
  let g = Graph.create ~nodes:n in
  let lsdb = t.states.(v).lsdb in
  let claims u w =
    match Hashtbl.find_opt lsdb u with
    | Some lsa -> List.mem w lsa.neighbors
    | None -> false
  in
  for u = 0 to n - 1 do
    match Hashtbl.find_opt lsdb u with
    | None -> ()
    | Some lsa ->
      List.iter
        (fun w ->
          (* Add each undirected edge once, only when both endpoint
             LSAs agree (two-way connectivity check, as in OSPF). *)
          if u < w && claims w u && not (Graph.has_edge g u w) then
            Graph.add_edge g u w)
        lsa.neighbors
  done;
  g

let rendezvous_known_at t v =
  Hashtbl.fold
    (fun origin lsa acc -> if lsa.is_rendezvous then origin :: acc else acc)
    t.states.(v).lsdb []
  |> List.sort compare

let fail_link t link =
  let reverse = Graph.reverse_link t.graph link in
  if t.alive.(link.Graph.index) || t.alive.(reverse.Graph.index) then begin
    t.alive.(link.Graph.index) <- false;
    t.alive.(reverse.Graph.index) <- false;
    (* Endpoints detect the loss and re-originate; rendezvous flags are
       sticky in their own LSAs. *)
    let rendezvous =
      List.filter_map
        (fun v ->
          match Hashtbl.find_opt t.states.(v).lsdb v with
          | Some lsa when lsa.is_rendezvous -> Some v
          | Some _ | None -> None)
        [ link.Graph.src; link.Graph.dst ]
    in
    originate t link.Graph.src ~rendezvous;
    originate t link.Graph.dst ~rendezvous
  end

let link_alive t link = t.alive.(link.Graph.index)
