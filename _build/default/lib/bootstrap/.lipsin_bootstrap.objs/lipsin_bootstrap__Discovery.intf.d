lib/bootstrap/discovery.mli: Lipsin_topology
