lib/bootstrap/discovery.ml: Array Hashtbl Lipsin_topology List
