(** Recursive bootstrap of the topology function (Sec. 2.2).

    "During the bootstrap process, the topology management functions on
    each node learn their local connectivity [...] Then, in a manner
    similar to the current routing protocols, they exchange information
    about their perceived local connectivity, creating a map of the
    network graph structure.  The same messages are also used to
    bootstrap the rendezvous system."

    This module simulates that protocol in synchronous rounds: each
    node starts knowing only its own adjacency (the layer below
    delivers to direct neighbours for free), floods sequence-numbered
    link-state advertisements (LSAs), and converges on the full map in
    O(diameter) rounds.  Rendezvous nodes set a flag in their LSA, so
    convergence also tells every node where the rendezvous system
    lives.

    Link failures are modelled by re-originating the endpoint LSAs with
    the link removed; the deltas re-flood and the maps re-converge. *)

type t

val create : ?rendezvous:Lipsin_topology.Graph.node list -> Lipsin_topology.Graph.t -> t
(** Fresh protocol state over the (physical) topology; every node knows
    its own neighbours, nothing else. *)

val step : t -> int
(** One synchronous round: every node floods LSAs its neighbours have
    not acknowledged yet.  Returns the number of LSA messages carried
    this round (0 once converged and quiescent). *)

val converged : t -> bool
(** Every node's link-state database contains every node's newest
    LSA. *)

val run : ?max_rounds:int -> t -> (int, string) result
(** Steps until {!converged}; returns the number of rounds taken.
    [Error] if [max_rounds] (default 4 × node count) elapse first —
    which would indicate a protocol bug, not a slow network. *)

val messages_sent : t -> int
(** Total LSA messages carried since creation (protocol overhead). *)

val map_of : t -> Lipsin_topology.Graph.node -> Lipsin_topology.Graph.t
(** The network map as node [v] currently sees it: an edge exists when
    both endpoint LSAs in [v]'s database agree on it.  Nodes [v] has
    never heard of appear isolated. *)

val rendezvous_known_at : t -> Lipsin_topology.Graph.node -> Lipsin_topology.Graph.node list
(** Which rendezvous nodes [v] has learned about, ascending. *)

val fail_link : t -> Lipsin_topology.Graph.link -> unit
(** Both endpoints re-originate their LSAs without the link; the
    protocol must be stepped again to re-converge.  Idempotent. *)

val link_alive : t -> Lipsin_topology.Graph.link -> bool
