lib/workload/scenario.mli: Lipsin_core Lipsin_topology Lipsin_util
