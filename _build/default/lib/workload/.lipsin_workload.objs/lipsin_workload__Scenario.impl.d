lib/workload/scenario.ml: Array Hashtbl Lipsin_baseline Lipsin_core Lipsin_sim Lipsin_topology Lipsin_util List
