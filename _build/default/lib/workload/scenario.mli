(** Topic workload generation (Sec. 4.3).

    The paper argues from measured popularity distributions — RSS
    subscriptions, YouTube views, IPTV channels are all Zipf-like — that
    the vast majority of topics have few receivers and need no
    forwarding state, while only the few most popular topics need
    virtual links or multiple sending.  This module samples such
    workloads over a topology. *)

type config = {
  topics : int;           (** Topic population size. *)
  zipf_s : float;         (** Popularity exponent (1.0 = classic Zipf). *)
  max_subscribers : int;  (** Subscriber count of the most popular topic. *)
  seed : int;
}

val default : config
(** 10_000 topics, s = 1.0, max 64 subscribers, seed 42. *)

type topic_load = {
  rank : int;  (** Popularity rank, 1 = most popular. *)
  publisher : Lipsin_topology.Graph.node;
  subscribers : Lipsin_topology.Graph.node list;  (** Distinct, ≠ publisher. *)
}

val sample_topic : config -> Lipsin_util.Rng.t -> Lipsin_topology.Graph.t -> topic_load
(** Draws one topic: a Zipf rank, a subscriber count scaled by
    popularity, and uniform distinct publisher/subscriber placements. *)

val sample : config -> Lipsin_topology.Graph.t -> n:int -> topic_load array
(** [n] independent topics from the configured distribution. *)

type aggregate = {
  sampled : int;
  stateless_ok : int;
      (** Topics whose whole tree fits one zFilter under the fill
          limit — no network state needed. *)
  needs_state : int;  (** The popular tail that needs splitting/state. *)
  mean_efficiency : float;  (** Over stateless-deliverable topics. *)
  mean_fpr : float;
  mean_subscribers : float;
  ssm_state_entries : int;
      (** (S,G) router-state entries IP SSM would install for the SAME
          workload (LIPSIN: zero for the stateless topics). *)
}

val evaluate :
  config -> Lipsin_core.Assignment.t -> n:int -> ?fill_limit:float -> unit -> aggregate
(** Samples [n] topics, delivers each through a fresh Net, and
    aggregates the state-vs-stateless accounting. *)
