lib/recursive/overlay.mli: Lipsin_bloom Lipsin_core Lipsin_topology
