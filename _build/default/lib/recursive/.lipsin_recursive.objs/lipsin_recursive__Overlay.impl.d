lib/recursive/overlay.ml: Array Lipsin_bloom Lipsin_core Lipsin_sim Lipsin_topology Lipsin_util List
