(** Recursive layering: LIPSIN over LIPSIN (Sec. 2.1, Fig. 1).

    "The same architecture is applied in a recursive manner on the top
    of itself, each higher layer utilising the rendezvous, topology,
    and forwarding functions offered by the lower layers."

    An overlay is a graph whose nodes attach to underlay nodes and
    whose links are underlay unicast deliveries: each overlay link owns
    a pre-computed underlay zFilter for its attach-point-to-attach-point
    path.  The overlay gets its own independent LIT assignment, so
    overlay zFilters are ordinary zFilters one layer up — and an
    overlay delivery executes as overlay forwarding decisions whose
    every hop is an underlay packet. *)

type t

val create :
  ?params:Lipsin_bloom.Lit.params ->
  ?seed:int ->
  underlay:Lipsin_core.Assignment.t ->
  attach:Lipsin_topology.Graph.node array ->
  edges:(int * int) list ->
  unit ->
  (t, string) result
(** [create ~underlay ~attach ~edges ()] builds an overlay of
    [Array.length attach] nodes; overlay node i lives at underlay node
    [attach.(i)].  Every overlay edge is realised by underlay unicast
    paths in both directions (pre-computed zFilters).  Errors when an
    attach point is unreachable or an edge's path overfills. *)

val overlay_graph : t -> Lipsin_topology.Graph.t
val assignment : t -> Lipsin_core.Assignment.t
(** The OVERLAY's own LIT assignment. *)

val attach_point : t -> int -> Lipsin_topology.Graph.node

type delivery = {
  delivered : int list;  (** Overlay subscribers reached. *)
  missed : int list;
  overlay_traversals : int;   (** Overlay links used. *)
  underlay_traversals : int;  (** Physical links used, total. *)
  stretch : float;
      (** underlay traversals / direct underlay tree size — the cost
          of stacking a layer. *)
}

val publish :
  t -> src:int -> subscribers:int list -> (delivery, string) result
(** Builds the overlay delivery tree (overlay zFilter, fpa selection),
    forwards it overlay-hop by overlay-hop, executing each overlay link
    as an underlay delivery. *)
