module Zfilter = Lipsin_bloom.Zfilter
module Lit = Lipsin_bloom.Lit
module Graph = Lipsin_topology.Graph

type t = {
  table : int;
  zfilter : Zfilter.t;
  k : int;
  tree_links : Graph.link list;
}

let fill_factor t = Zfilter.fill_factor t.zfilter
let fpa t = Zfilter.fpa t.zfilter ~k:t.k

let build_one assignment ~tree ~table =
  if tree = [] then invalid_arg "Candidate.build_one: empty tree";
  let params = Assignment.params assignment in
  if table < 0 || table >= params.Lit.d then
    invalid_arg "Candidate.build_one: table index out of range";
  let zfilter = Zfilter.create ~m:params.Lit.m in
  List.iter
    (fun l -> Zfilter.add zfilter (Assignment.tag assignment l ~table))
    tree;
  { table; zfilter; k = params.Lit.k_for_table.(table); tree_links = tree }

let build assignment ~tree =
  let params = Assignment.params assignment in
  Array.init params.Lit.d (fun table -> build_one assignment ~tree ~table)

let matches_all_tree_links assignment t =
  List.for_all
    (fun l ->
      Zfilter.matches t.zfilter ~lit:(Assignment.tag assignment l ~table:t.table))
    t.tree_links
