module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt

type part = {
  subscribers : Graph.node list;
  tree : Graph.link list;
  candidate : Candidate.t;
}

let default_select candidates = Select.select_fpa candidates

let plan ?(fill_limit = 0.7) ?(select = default_select) assignment ~root
    ~subscribers =
  let graph = Assignment.graph assignment in
  let subscribers =
    List.sort_uniq compare (List.filter (fun s -> s <> root) subscribers)
  in
  if subscribers = [] then Error "no subscribers to split over"
  else begin
    (* Order subscribers by BFS discovery from the root so contiguous
       slices share prefix paths: splitting then separates far-apart
       subtrees rather than interleaving them. *)
    let dist = Spt.distances graph ~root in
    let ordered =
      List.sort
        (fun a b ->
          let c = compare dist.(a) dist.(b) in
          if c <> 0 then c else compare a b)
        subscribers
    in
    let encode subs =
      let tree = Spt.delivery_tree graph ~root ~subscribers:subs in
      match select (Candidate.build assignment ~tree) with
      | Some c when Candidate.fill_factor c <= fill_limit ->
        Some { subscribers = subs; tree; candidate = c }
      | Some _ | None -> None
    in
    let rec solve subs =
      match encode subs with
      | Some part -> Some [ part ]
      | None -> (
        match subs with
        | [] | [ _ ] -> None  (* a single subscriber that cannot fit *)
        | _ ->
          let half = List.length subs / 2 in
          let left = List.filteri (fun i _ -> i < half) subs in
          let right = List.filteri (fun i _ -> i >= half) subs in
          (match (solve left, solve right) with
          | Some a, Some b -> Some (a @ b)
          | None, _ | _, None -> None))
    in
    match solve ordered with
    | Some parts -> Ok parts
    | None -> Error "a single subscriber path exceeds the fill limit"
  end

let total_traversals parts =
  List.fold_left (fun acc p -> acc + List.length p.tree) 0 parts

let duplicate_traversals parts =
  let seen = Hashtbl.create 64 in
  let union = ref 0 in
  List.iter
    (fun p ->
      List.iter
        (fun l ->
          if not (Hashtbl.mem seen l.Graph.index) then begin
            Hashtbl.replace seen l.Graph.index ();
            incr union
          end)
        p.tree)
    parts;
  total_traversals parts - !union
