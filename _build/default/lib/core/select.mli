(** Candidate zFilter selection (Sec. 3.2, "Selection").

    Two base strategies:
    - {b fpa}: lowest predicted false-positive probability after
      hashing, min ρ^k over the d candidates — cheap, topology-blind;
    - {b fpr}: lowest *observed* false-positive count against a test
      set of LITs — costlier, better, because it evaluates the actual
      neighbourhood the packet will traverse.

    The fpr family generalises to *link avoidance*: weighting false
    positives by where they land (routing policy, congestion, security
    — Sec. 3.2), implemented here as a per-link penalty function.

    Selection also enforces the fill-factor limit of Sec. 4.4: a
    candidate whose fill exceeds the limit is discarded, and if all d
    candidates exceed it the tree is too large for one zFilter — the
    caller must split the tree or install virtual links (Sec. 4.3). *)

type link = Lipsin_topology.Graph.link

val default_test_set : Assignment.t -> tree:link list -> link list
(** The membership tests the delivery will actually perform: every
    outgoing link of every node on the tree, minus the tree links
    themselves. *)

val count_false_positives : Assignment.t -> Candidate.t -> test:link list -> int
(** How many of the test links' LITs (in the candidate's table) falsely
    match the candidate. *)

val weighted_false_positives :
  Assignment.t -> Candidate.t -> test:link list -> weight:(link -> float) -> float
(** Penalty-weighted count, for link avoidance. *)

val select_fpa : ?fill_limit:float -> Candidate.t array -> Candidate.t option
(** Lowest ρ^k among candidates within the fill limit (default limit
    0.7); ties break on the lower table index.  [None] if every
    candidate is over the limit. *)

val select_fpr :
  ?fill_limit:float ->
  Assignment.t ->
  Candidate.t array ->
  test:link list ->
  Candidate.t option
(** Lowest observed false-positive count; ties break on fpa. *)

val select_weighted :
  ?fill_limit:float ->
  Assignment.t ->
  Candidate.t array ->
  test:link list ->
  weight:(link -> float) ->
  Candidate.t option
(** Lowest weighted penalty; ties break on fpa.  [weight] returning
    [infinity] makes a link a hard constraint. *)

val standard : Candidate.t array -> Candidate.t
(** The non-optimised baseline: always table 0 (the paper's d = 1
    "Standard zFilter").  @raise Invalid_argument on an empty array. *)

val avoid_set : link list -> link -> float
(** [avoid_set links] is a weight function: 1000.0 on the given links,
    1.0 elsewhere — the simple policy/congestion/security avoidance
    criterion. *)
