module Rng = Lipsin_util.Rng
module Lit = Lipsin_bloom.Lit
module Graph = Lipsin_topology.Graph

type t = {
  secret : int64;
  params : Lit.params;
  graph : Graph.t;
  base_nonces : int64 array;
  cache : (int, Assignment.t) Hashtbl.t;
}

let make ~secret params rng graph =
  Lit.validate params;
  {
    secret;
    params;
    graph;
    base_nonces = Array.init (Graph.link_count graph) (fun _ -> Rng.int64 rng);
    cache = Hashtbl.create 4;
  }

let epoch_nonce t ~link_index ~epoch =
  if link_index < 0 || link_index >= Array.length t.base_nonces then
    invalid_arg "Rotation.epoch_nonce: link index out of range";
  if epoch < 0 then invalid_arg "Rotation: negative epoch";
  (* PRF(secret, base, epoch) as a chain of SplitMix64 finalisers: each
     stage fully diffuses, so epochs and links are uncorrelated without
     the secret. *)
  Rng.mix64
    (Int64.logxor
       (Rng.mix64 (Int64.logxor t.secret (Int64.of_int (epoch + 1))))
       (Rng.mix64 t.base_nonces.(link_index)))

let assignment_at t ~epoch =
  if epoch < 0 then invalid_arg "Rotation: negative epoch";
  match Hashtbl.find_opt t.cache epoch with
  | Some a -> a
  | None ->
    let nonces =
      Array.init (Array.length t.base_nonces) (fun link_index ->
          epoch_nonce t ~link_index ~epoch)
    in
    let a = Assignment.make_with_nonces t.params nonces t.graph in
    Hashtbl.replace t.cache epoch a;
    a

let graph t = t.graph
let params t = t.params
