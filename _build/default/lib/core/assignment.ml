module Rng = Lipsin_util.Rng
module Lit = Lipsin_bloom.Lit
module Graph = Lipsin_topology.Graph

type t = {
  params : Lit.params;
  graph : Graph.t;
  lits : Lit.t array;  (* indexed by directed-link index *)
}

let make params rng graph =
  let n = Graph.link_count graph in
  let lits = Array.init n (fun _ -> Lit.fresh params rng) in
  { params; graph; lits }

let make_with_nonces params nonces graph =
  if Array.length nonces <> Graph.link_count graph then
    invalid_arg "Assignment.make_with_nonces: one nonce per directed link";
  let lits = Array.map (fun nonce -> Lit.generate params ~nonce) nonces in
  { params; graph; lits }

let nonces t = Array.map Lit.nonce t.lits

let params t = t.params
let graph t = t.graph
let link_count t = Array.length t.lits

let lit_by_index t i =
  if i < 0 || i >= Array.length t.lits then
    invalid_arg "Assignment.lit_by_index: link index out of range";
  t.lits.(i)

let lit t (l : Graph.link) = lit_by_index t l.Graph.index
let tag t l ~table = Lit.tag (lit t l) table

let rekey t rng = make t.params rng t.graph

let rekey_link t (l : Graph.link) rng =
  let lits = Array.copy t.lits in
  lits.(l.Graph.index) <- Lit.fresh t.params rng;
  { t with lits }
