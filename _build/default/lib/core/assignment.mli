(** LIT assignment: binding link identities to a topology.

    The topology system assigns each unidirectional link its Link ID and
    d LITs (Sec. 2.3).  No coordination is needed — identities are drawn
    independently per link — but the assignment is the shared context
    that zFilter construction (sender side) and forwarding tables (node
    side) must agree on, so it is materialised as a value. *)

type t

val make : Lipsin_bloom.Lit.params -> Lipsin_util.Rng.t -> Lipsin_topology.Graph.t -> t
(** Draws a fresh identity for every directed link of the graph. *)

val make_with_nonces :
  Lipsin_bloom.Lit.params -> int64 array -> Lipsin_topology.Graph.t -> t
(** Derives identities from the given per-directed-link nonces (index =
    link index).  Used to build multiple same-nonce views of one
    network — e.g. the several filter widths of {!Adaptive}.
    @raise Invalid_argument on a length mismatch. *)

val nonces : t -> int64 array
(** The per-link nonces, by link index (fresh array). *)

val params : t -> Lipsin_bloom.Lit.params
val graph : t -> Lipsin_topology.Graph.t

val lit : t -> Lipsin_topology.Graph.link -> Lipsin_bloom.Lit.t
(** Identity of a link.  @raise Invalid_argument if the link does not
    belong to the bound graph. *)

val lit_by_index : t -> int -> Lipsin_bloom.Lit.t

val tag : t -> Lipsin_topology.Graph.link -> table:int -> Lipsin_bitvec.Bitvec.t
(** [tag t l ~table] — the LIT of link [l] in forwarding table
    [table]. *)

val link_count : t -> int

val rekey : t -> Lipsin_util.Rng.t -> t
(** Fresh identities for every link over the same graph — the paper's
    "slowly changing the Link IDs over time" security countermeasure
    (Sec. 4.4).  Old zFilters stop matching. *)

val rekey_link : t -> Lipsin_topology.Graph.link -> Lipsin_util.Rng.t -> t
(** Changes one link's identity only (e.g. an uplink under a LIT
    learning attack).  Returns a new assignment sharing the rest. *)
