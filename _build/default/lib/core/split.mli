(** Multiple sending — splitting trees that overfill one zFilter
    (Sec. 4.3).

    "Instead of building one large multicast tree we can build several
    smaller ones, thereby keeping zFilters' fill factor reasonable.
    The packets will follow the desired route [...] but exact copies
    will pass through certain links where the delivery trees overlap."

    The splitter partitions the subscriber set until every part's tree
    admits a candidate under the fill limit, preferring partitions that
    keep nearby subscribers together (BFS order from the root) so the
    trees overlap as little as possible. *)

type part = {
  subscribers : Lipsin_topology.Graph.node list;
  tree : Lipsin_topology.Graph.link list;
  candidate : Candidate.t;
}

val plan :
  ?fill_limit:float ->
  ?select:(Candidate.t array -> Candidate.t option) ->
  Assignment.t ->
  root:Lipsin_topology.Graph.node ->
  subscribers:Lipsin_topology.Graph.node list ->
  (part list, string) result
(** Partition + encode.  Default [fill_limit] 0.7, default [select]
    fpa.  Returns one part when a single zFilter suffices.  [Error]
    only when even a single subscriber's path overflows the limit (the
    tree is then undeliverable at this m). *)

val total_traversals : part list -> int
(** Σ tree sizes — the bandwidth actually spent, duplicates on shared
    links included. *)

val duplicate_traversals : part list -> int
(** Traversals in excess of the union of the part trees — the
    multiple-sending overhead the paper warns about. *)
