module Graph = Lipsin_topology.Graph
module Lit = Lipsin_bloom.Lit

type t = {
  primary : Graph.link list;
  secondary : Graph.link list;
  disjoint : bool;
  primary_candidate : Candidate.t;
  secondary_candidate : Candidate.t;
}

(* BFS shortest path avoiding a set of directed links. *)
let path_avoiding graph ~src ~dst ~avoid =
  let blocked = Hashtbl.create 16 in
  List.iter (fun l -> Hashtbl.replace blocked l.Graph.index ()) avoid;
  let n = Graph.node_count graph in
  let parent_link = Array.make n None in
  let visited = Array.make n false in
  visited.(src) <- true;
  let queue = Queue.create () in
  Queue.add src queue;
  let found = ref (src = dst) in
  while (not !found) && not (Queue.is_empty queue) do
    let u = Queue.take queue in
    List.iter
      (fun l ->
        let v = l.Graph.dst in
        if (not (Hashtbl.mem blocked l.Graph.index)) && not visited.(v) then begin
          visited.(v) <- true;
          parent_link.(v) <- Some l;
          if v = dst then found := true;
          Queue.add v queue
        end)
      (Graph.out_links graph u)
  done;
  if not visited.(dst) then None
  else begin
    let rec climb v acc =
      match parent_link.(v) with
      | None -> acc
      | Some l -> climb l.Graph.src (l :: acc)
    in
    Some (climb dst [])
  end

let plan ?(table_primary = 0) ?(table_secondary = 1) assignment ~src ~dst =
  let params = Assignment.params assignment in
  if table_primary = table_secondary then
    invalid_arg "Multipath.plan: tables must differ";
  if
    table_primary < 0 || table_primary >= params.Lit.d || table_secondary < 0
    || table_secondary >= params.Lit.d
  then invalid_arg "Multipath.plan: table index out of range";
  let graph = Assignment.graph assignment in
  match path_avoiding graph ~src ~dst ~avoid:[] with
  | None -> Error "destination unreachable"
  | Some primary ->
    let secondary, disjoint =
      match path_avoiding graph ~src ~dst ~avoid:primary with
      | Some p -> (p, true)
      | None -> (primary, false)
    in
    if primary = [] then Error "source equals destination"
    else
      Ok
        {
          primary;
          secondary;
          disjoint;
          primary_candidate =
            Candidate.build_one assignment ~tree:primary ~table:table_primary;
          secondary_candidate =
            Candidate.build_one assignment ~tree:secondary ~table:table_secondary;
        }

let spray t ~packet_index =
  if packet_index mod 2 = 0 then
    (t.primary_candidate.Candidate.table, t.primary_candidate.Candidate.zfilter)
  else
    (t.secondary_candidate.Candidate.table, t.secondary_candidate.Candidate.zfilter)

let load_split t ~packets =
  let counts = Hashtbl.create 16 in
  let bump link n =
    Hashtbl.replace counts link.Graph.index
      (match Hashtbl.find_opt counts link.Graph.index with
      | Some (l, c) -> (l, c + n)
      | None -> (link, n))
  in
  let primary_packets = (packets + 1) / 2 in
  let secondary_packets = packets / 2 in
  List.iter (fun l -> bump l primary_packets) t.primary;
  List.iter (fun l -> bump l secondary_packets) t.secondary;
  Hashtbl.fold (fun _ pair acc -> pair :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> compare a.Graph.index b.Graph.index)
