lib/core/candidate.mli: Assignment Lipsin_bloom Lipsin_topology
