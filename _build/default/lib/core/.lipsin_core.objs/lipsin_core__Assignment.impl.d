lib/core/assignment.ml: Array Lipsin_bloom Lipsin_topology Lipsin_util
