lib/core/adaptive.mli: Assignment Candidate Lipsin_topology Lipsin_util
