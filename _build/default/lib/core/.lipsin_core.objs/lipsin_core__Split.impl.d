lib/core/split.ml: Array Assignment Candidate Hashtbl Lipsin_topology List Select
