lib/core/assignment.mli: Lipsin_bitvec Lipsin_bloom Lipsin_topology Lipsin_util
