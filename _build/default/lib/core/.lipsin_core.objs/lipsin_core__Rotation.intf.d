lib/core/rotation.mli: Assignment Lipsin_bloom Lipsin_topology Lipsin_util
