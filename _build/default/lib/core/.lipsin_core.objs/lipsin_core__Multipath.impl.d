lib/core/multipath.ml: Array Assignment Candidate Hashtbl Lipsin_bloom Lipsin_topology List Queue
