lib/core/split.mli: Assignment Candidate Lipsin_topology
