lib/core/rotation.ml: Array Assignment Hashtbl Int64 Lipsin_bloom Lipsin_topology Lipsin_util
