lib/core/multipath.mli: Assignment Candidate Lipsin_bloom Lipsin_topology
