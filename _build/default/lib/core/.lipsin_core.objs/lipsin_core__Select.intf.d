lib/core/select.mli: Assignment Candidate Lipsin_topology
