lib/core/persist.mli: Assignment Lipsin_topology
