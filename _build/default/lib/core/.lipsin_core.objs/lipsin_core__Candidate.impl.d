lib/core/candidate.ml: Array Assignment Lipsin_bloom Lipsin_topology List
