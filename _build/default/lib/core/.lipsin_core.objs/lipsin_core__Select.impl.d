lib/core/select.ml: Array Assignment Candidate Hashtbl Lipsin_bloom Lipsin_topology List Option
