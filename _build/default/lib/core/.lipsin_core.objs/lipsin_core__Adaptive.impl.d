lib/core/adaptive.ml: Array Assignment Candidate Lipsin_bloom Lipsin_topology Lipsin_util List Select
