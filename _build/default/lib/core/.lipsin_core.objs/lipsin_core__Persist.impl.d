lib/core/persist.ml: Array Assignment Buffer Fun In_channel Int64 Lipsin_bloom Lipsin_topology List Option Printf String
