(** Multipath delivery over candidate zFilters (Sec. 4.4: "additional
    future work will consider how legitimate traffic can exploit the
    multi-path capabilities of the zFilters", implemented).

    Because the d-index travels in the packet, a sender can hold
    several zFilters for the same destination over *different physical
    paths* and spray packets across them — spreading load, and keeping
    a live path when one fails without any recovery protocol at all.

    Paths are made maximally disjoint by construction: the second path
    is computed in the graph with the first path's links removed
    (falling back to the shortest path when the cut disconnects). *)

type t = {
  primary : Lipsin_topology.Graph.link list;
  secondary : Lipsin_topology.Graph.link list;
  disjoint : bool;  (** The two paths share no directed link. *)
  primary_candidate : Candidate.t;
  secondary_candidate : Candidate.t;
}

val plan :
  ?table_primary:int ->
  ?table_secondary:int ->
  Assignment.t ->
  src:Lipsin_topology.Graph.node ->
  dst:Lipsin_topology.Graph.node ->
  (t, string) result
(** Two unicast paths src → dst encoded in two different forwarding
    tables (defaults 0 and 1).  [Error] when dst is unreachable.
    @raise Invalid_argument if the two table indexes are equal or out
    of range. *)

val spray : t -> packet_index:int -> int * Lipsin_bloom.Zfilter.t
(** Round-robin selector: (table, zFilter) for the n-th packet. *)

val load_split :
  t -> packets:int -> (Lipsin_topology.Graph.link * int) list
(** Per-link packet counts when [packets] packets are sprayed —
    ascending by link index; links on both paths carry roughly half
    each when disjoint. *)
