(** Candidate zFilter construction (Sec. 3.2, "Construction").

    Given a delivery tree — a set of unidirectional links — ORing the
    links' table-i LITs yields candidate Bloom filter i; the d
    candidates are "equivalent" representations of the same tree and
    differ only in their false-positive behaviour, which {!Select}
    exploits. *)

type t = {
  table : int;  (** Forwarding-table index this candidate is valid for. *)
  zfilter : Lipsin_bloom.Zfilter.t;
  k : int;      (** Bits per element in this table (for fpa). *)
  tree_links : Lipsin_topology.Graph.link list;  (** The encoded tree. *)
}

val fill_factor : t -> float
val fpa : t -> float
(** Eq. (1): ρ^k. *)

val build : Assignment.t -> tree:Lipsin_topology.Graph.link list -> t array
(** All d candidates for the given tree.  @raise Invalid_argument on an
    empty tree or links foreign to the assignment's graph. *)

val build_one : Assignment.t -> tree:Lipsin_topology.Graph.link list -> table:int -> t
(** A single candidate (the d = 1 "standard" configuration uses table
    0). *)

val matches_all_tree_links : Assignment.t -> t -> bool
(** Sanity invariant: every tree link's LIT is contained in the
    candidate (always true by construction; exposed for tests). *)
