module Zfilter = Lipsin_bloom.Zfilter
module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt

type link = Graph.link

let default_fill_limit = 0.7

let default_test_set assignment ~tree =
  let graph = Assignment.graph assignment in
  let on_tree = Hashtbl.create 64 in
  List.iter (fun l -> Hashtbl.replace on_tree l.Graph.index ()) tree;
  let nodes = Spt.tree_nodes tree in
  List.concat_map
    (fun node ->
      List.filter
        (fun l -> not (Hashtbl.mem on_tree l.Graph.index))
        (Graph.out_links graph node))
    nodes

let count_false_positives assignment candidate ~test =
  List.fold_left
    (fun acc l ->
      let lit = Assignment.tag assignment l ~table:candidate.Candidate.table in
      if Zfilter.matches candidate.Candidate.zfilter ~lit then acc + 1 else acc)
    0 test

let weighted_false_positives assignment candidate ~test ~weight =
  List.fold_left
    (fun acc l ->
      let lit = Assignment.tag assignment l ~table:candidate.Candidate.table in
      if Zfilter.matches candidate.Candidate.zfilter ~lit then acc +. weight l
      else acc)
    0.0 test

let within_limit fill_limit c = Candidate.fill_factor c <= fill_limit

(* Pick the in-limit candidate minimising [score]; ties break on fpa,
   then table index (candidates arrive in table order). *)
let best ?(fill_limit = default_fill_limit) candidates ~score =
  let chosen = ref None in
  let consider c =
    if within_limit fill_limit c then begin
      let s = score c and f = Candidate.fpa c in
      match !chosen with
      | None -> chosen := Some (s, f, c)
      | Some (s0, f0, _) ->
        if s < s0 || (s = s0 && f < f0) then chosen := Some (s, f, c)
    end
  in
  Array.iter consider candidates;
  Option.map (fun (_, _, c) -> c) !chosen

let select_fpa ?fill_limit candidates =
  best ?fill_limit candidates ~score:Candidate.fpa

let select_fpr ?fill_limit assignment candidates ~test =
  best ?fill_limit candidates ~score:(fun c ->
      float_of_int (count_false_positives assignment c ~test))

let select_weighted ?fill_limit assignment candidates ~test ~weight =
  best ?fill_limit candidates ~score:(fun c ->
      weighted_false_positives assignment c ~test ~weight)

let standard candidates =
  if Array.length candidates = 0 then invalid_arg "Select.standard: no candidates";
  candidates.(0)

let avoid_set links =
  let avoided = Hashtbl.create 16 in
  List.iter (fun l -> Hashtbl.replace avoided l.Graph.index ()) links;
  fun l -> if Hashtbl.mem avoided l.Graph.index then 1000.0 else 1.0
