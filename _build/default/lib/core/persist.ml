module Lit = Lipsin_bloom.Lit
module Graph = Lipsin_topology.Graph

let to_string assignment =
  let params = Assignment.params assignment in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "lipsin-assignment v1\n";
  Buffer.add_string buf (Printf.sprintf "m %d\n" params.Lit.m);
  Buffer.add_string buf
    (Printf.sprintf "k %s\n"
       (String.concat ","
          (Array.to_list (Array.map string_of_int params.Lit.k_for_table))));
  Array.iter
    (fun nonce -> Buffer.add_string buf (Printf.sprintf "%016Lx\n" nonce))
    (Assignment.nonces assignment);
  Buffer.contents buf

let of_string graph s =
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' s)
  in
  match lines with
  | magic :: m_line :: k_line :: nonce_lines ->
    if String.trim magic <> "lipsin-assignment v1" then
      Error "bad magic line"
    else begin
      let parse_m () =
        match String.split_on_char ' ' (String.trim m_line) with
        | [ "m"; v ] -> int_of_string_opt v
        | _ -> None
      in
      let parse_k () =
        match String.split_on_char ' ' (String.trim k_line) with
        | [ "k"; ks ] -> (
          let parts = String.split_on_char ',' ks in
          let parsed = List.filter_map int_of_string_opt parts in
          if List.length parsed = List.length parts then
            Some (Array.of_list parsed)
          else None)
        | _ -> None
      in
      match (parse_m (), parse_k ()) with
      | Some m, Some k_for_table when Array.length k_for_table > 0 -> (
        let params = { Lit.m; d = Array.length k_for_table; k_for_table } in
        match Lit.validate params with
        | exception Invalid_argument msg -> Error msg
        | () ->
          if List.length nonce_lines <> Graph.link_count graph then
            Error "nonce count does not match the graph's links"
          else begin
            let parse_nonce line =
              let trimmed = String.trim line in
              if String.length trimmed = 16 then
                Int64.of_string_opt ("0x" ^ trimmed)
              else None
            in
            let nonces = List.map parse_nonce nonce_lines in
            if List.exists Option.is_none nonces then Error "malformed nonce line"
            else
              Ok
                (Assignment.make_with_nonces params
                   (Array.of_list (List.map Option.get nonces))
                   graph)
          end)
      | _ -> Error "malformed parameter lines"
    end
  | _ -> Error "truncated assignment file"

let save assignment path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string assignment))

let load graph path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string graph (In_channel.input_all ic))
