(** Epoch-based Link ID rotation (Sec. 4.4, "ongoing work").

    "We can avoid many of the known, and probably a number of still
    unknown attacks, by slowly changing the Link IDs over time.  Our
    on-going work is focusing on hash chains and pseudo-random
    sequences [...] with a shared secret between the individual
    forwarding nodes and the topology system the control overhead of
    communicating the changes could be kept at a minimum."

    Implemented: every link's epoch-e nonce is a pseudo-random function
    of (master secret, base nonce, e).  A forwarding node holding the
    secret derives the current tags locally — zero messages per
    rotation — while zFilters built for epoch e stop matching in epoch
    e+1 and must be re-requested, bounding the usable lifetime of any
    stolen or leaked filter. *)

type t

val make :
  secret:int64 ->
  Lipsin_bloom.Lit.params ->
  Lipsin_util.Rng.t ->
  Lipsin_topology.Graph.t ->
  t
(** Draws per-link base nonces; the secret never appears in any
    derived tag directly. *)

val assignment_at : t -> epoch:int -> Assignment.t
(** The network's LIT assignment during [epoch] (memoised).
    @raise Invalid_argument on a negative epoch. *)

val epoch_nonce : t -> link_index:int -> epoch:int -> int64
(** The PRF output itself, for tests and node-local derivation. *)

val graph : t -> Lipsin_topology.Graph.t
val params : t -> Lipsin_bloom.Lit.params
