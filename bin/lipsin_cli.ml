(* Command-line front end: regenerate any of the paper's tables and
   figures, or run the extension experiments.  `lipsin_cli all` is what
   EXPERIMENTS.md records. *)

open Cmdliner
module E = Lipsin_experiments

let ppf = Format.std_formatter

let trials_arg default =
  let doc = "Number of Monte-Carlo trials per data point." in
  Arg.(value & opt int default & info [ "trials" ] ~docv:"N" ~doc)

let simple name doc f =
  Cmd.v (Cmd.info name ~doc) Term.(const (fun () -> f ppf) $ const ())

let with_trials name doc f =
  Cmd.v (Cmd.info name ~doc)
    Term.(const (fun trials -> f ?trials:(Some trials) ppf) $ trials_arg 500)

let table1 = simple "table1" "Graph characterization of the five topologies." E.Table1.run
let table2 = with_trials "table2" "Stateless forwarding: links/efficiency/fpr." E.Table2.run
let table3 = with_trials "table3" "Mean fpr per selection and k configuration." E.Table3.run

let fig5 =
  let csv_flag =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit a plot-ready CSV series.")
  in
  Cmd.v (Cmd.info "fig5" ~doc:"fpr and efficiency vs users on AS6461.")
    Term.(
      const (fun trials csv -> E.Fig5.run ~trials ~csv ppf)
      $ trials_arg 300 $ csv_flag)

let fig6 =
  Cmd.v (Cmd.info "fig6" ~doc:"Stateful dense multicast efficiency.")
    Term.(const (fun trials -> E.Fig6.run ~trials ppf) $ trials_arg 100)

let table4 = simple "table4" "Latency vs number of forwarding nodes." (E.Table4.run ?samples:None)
let table5 = simple "table5" "Echo latency: wire vs IP router vs LIPSIN." (E.Table5.run ?batches:None ?batch_size:None)
let ftmem = simple "ftmem" "Forwarding-table memory (Eq. 4)." E.Ftmem.run
let security = simple "security" "Contamination, probing and LIT-learning attacks." E.Security_exp.run

let recovery =
  Cmd.v (Cmd.info "recovery" ~doc:"Fast recovery: VLId and zFilter-rewrite schemes.")
    Term.(const (fun trials -> E.Recovery_exp.run ~trials ppf) $ trials_arg 100)

let interdomain = simple "interdomain" "8-domain inter-domain forwarding." (E.Interdomain_exp.run ?publications:None)
let workload = simple "workload" "Zipf topic workload: state vs stateless." (E.Workload_exp.run ?topics:None)

let ablation =
  Cmd.v (Cmd.info "ablation" ~doc:"m / d / Xcast-crossover ablations.")
    Term.(const (fun trials -> E.Ablation.run ~trials ppf) $ trials_arg 300)

let splitting =
  Cmd.v (Cmd.info "splitting" ~doc:"Multiple sending vs virtual links (Sec 4.3).")
    Term.(const (fun trials -> E.Splitting_exp.run ~trials ppf) $ trials_arg 50)

let adaptive = simple "adaptive" "Variable filter width per packet (Sec 4.2 future work)." (E.Adaptive_exp.run ?topics:None)
let caching = simple "caching" "In-network opportunistic caching (Sec 5.4)." (E.Caching_exp.run ?fetches:None)
let congestion = simple "congestion" "Congestion-aware candidate selection (Sec 3.2)." (E.Congestion_exp.run ?publications:None)
let bootstrap = simple "bootstrap" "Topology bootstrap convergence cost (Sec 2.2)." E.Bootstrap_exp.run

let latency =
  Cmd.v (Cmd.info "latency" ~doc:"Native multicast latency vs application overlay.")
    Term.(const (fun trials -> E.Latency_exp.run ~trials ppf) $ trials_arg 200)

let goodput = simple "goodput" "Delivery ratio vs offered load (fluid model)." (E.Goodput_exp.run ?topics:None)

let multipath =
  Cmd.v (Cmd.info "multipath" ~doc:"Disjoint-path spraying and failover (Sec 4.4 future work).")
    Term.(const (fun trials -> E.Multipath_exp.run ~trials ppf) $ trials_arg 200)

let directory = simple "directory" "Rendezvous directory resources and caching (Sec 5.2)." (E.Directory_exp.run ?lookups:None)
let fec = simple "fec" "Lateral error correction over a lossy fabric." (E.Fec_exp.run ?windows:None)
let churn = simple "churn" "Join churn: state changes avoided (Sec 4.3)." (E.Churn_exp.run ?joins:None)
let loops = simple "loops" "Loop prevention vs adversarial cycles (Sec 3.3.3)." (E.Loops_exp.run ?trials:None)
let recursive = simple "recursive" "LIPSIN over LIPSIN + weighted trees (Sec 2.1)." (E.Recursive_exp.run ?trials:None)

let all =
  let doc = "Run every experiment (what EXPERIMENTS.md records)." in
  let run () =
    let rule title =
      Format.fprintf ppf "@.=== %s ===@." title
    in
    rule "Table 1"; E.Table1.run ppf;
    rule "Table 2"; E.Table2.run ppf;
    rule "Table 3"; E.Table3.run ppf;
    rule "Figure 5"; E.Fig5.run ppf;
    rule "Figure 6"; E.Fig6.run ppf;
    rule "Table 4"; E.Table4.run ppf;
    rule "Table 5"; E.Table5.run ppf;
    rule "Eq. 4 memory"; E.Ftmem.run ppf;
    rule "Workload (Sec 4.3)"; E.Workload_exp.run ppf;
    rule "Security (Sec 4.4)"; E.Security_exp.run ppf;
    rule "Recovery (Sec 3.3.2)"; E.Recovery_exp.run ppf;
    rule "Inter-domain (Sec 5)"; E.Interdomain_exp.run ppf;
    rule "Ablations"; E.Ablation.run ppf;
    rule "Splitting vs virtual links (Sec 4.3)"; E.Splitting_exp.run ppf;
    rule "Adaptive filter width (Sec 4.2, future work)"; E.Adaptive_exp.run ppf;
    rule "In-network caching (Sec 5.4)"; E.Caching_exp.run ppf;
    rule "Congestion-aware selection (Sec 3.2)"; E.Congestion_exp.run ppf;
    rule "Bootstrap (Sec 2.2)"; E.Bootstrap_exp.run ppf;
    rule "Multicast latency vs overlay"; E.Latency_exp.run ppf;
    rule "Goodput under load (fluid model)"; E.Goodput_exp.run ppf;
    rule "Multipath (Sec 4.4, future work)"; E.Multipath_exp.run ppf;
    rule "Rendezvous directory (Sec 5.2)"; E.Directory_exp.run ppf;
    rule "Lateral error correction"; E.Fec_exp.run ppf;
    rule "Join churn (Sec 4.3)"; E.Churn_exp.run ppf;
    rule "Loop prevention (Sec 3.3.3)"; E.Loops_exp.run ppf;
    rule "Recursive layering + weighted trees"; E.Recursive_exp.run ppf
  in
  Cmd.v (Cmd.info "all" ~doc) Term.(const run $ const ())

(* ---- operator tooling: topology + assignment files ---- *)

module Graph = Lipsin_topology.Graph
module Generator = Lipsin_topology.Generator
module Edge_list = Lipsin_topology.Edge_list
module Metrics = Lipsin_topology.Metrics
module As_presets = Lipsin_topology.As_presets
module Lit = Lipsin_bloom.Lit
module Assignment = Lipsin_core.Assignment
module Candidate = Lipsin_core.Candidate
module Select = Lipsin_core.Select
module Persist = Lipsin_core.Persist
module Spt = Lipsin_topology.Spt
module Net = Lipsin_sim.Net
module Run = Lipsin_sim.Run
module Rng = Lipsin_util.Rng

let file_arg ~doc name = Arg.(required & opt (some string) None & info [ name ] ~docv:"FILE" ~doc)

let topo_gen =
  let doc = "Generate a topology file (preferential-attachment or preset)." in
  let run nodes edges max_degree seed preset out =
    let graph =
      match preset with
      | Some name -> As_presets.by_name name
      | None ->
        Generator.pref_attach ~rng:(Rng.of_int seed) ~nodes ~edges ~max_degree ()
    in
    Edge_list.save graph out;
    Format.fprintf ppf "wrote %s: %a@." out Metrics.pp (Metrics.compute graph)
  in
  Cmd.v (Cmd.info "topo-gen" ~doc)
    Term.(
      const run
      $ Arg.(value & opt int 50 & info [ "nodes" ] ~docv:"N" ~doc:"Node count.")
      $ Arg.(value & opt int 85 & info [ "edges" ] ~docv:"E" ~doc:"Undirected edge count.")
      $ Arg.(value & opt int 12 & info [ "max-degree" ] ~docv:"D" ~doc:"Degree cap.")
      $ Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Generator seed.")
      $ Arg.(value & opt (some string) None & info [ "preset" ] ~docv:"AS" ~doc:"Use a Table 1 preset (AS1221...TA2) instead of generating.")
      $ file_arg ~doc:"Output edge-list file." "out")

let topo_stats =
  let doc = "Print Table 1-style statistics of a topology file." in
  let run path =
    let graph = Edge_list.load path in
    Format.fprintf ppf "%a@." Metrics.pp (Metrics.compute graph)
  in
  Cmd.v (Cmd.info "topo-stats" ~doc)
    Term.(const run $ file_arg ~doc:"Edge-list file." "topo")

let assign_gen =
  let doc = "Draw and persist a LIT assignment for a topology file." in
  let run topo out seed =
    let graph = Edge_list.load topo in
    let assignment = Assignment.make Lit.default (Rng.of_int seed) graph in
    Persist.save assignment out;
    Format.fprintf ppf "wrote %s: %d link identities (m=248, d=8, k=5)@." out
      (Assignment.link_count assignment)
  in
  Cmd.v (Cmd.info "assign-gen" ~doc)
    Term.(
      const run
      $ file_arg ~doc:"Edge-list file." "topo"
      $ file_arg ~doc:"Output assignment file." "out"
      $ Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Identity seed."))

let forward_cmd =
  let doc = "Simulate one delivery over persisted topology + assignment." in
  let run topo assignment_file src subscribers =
    let graph = Edge_list.load topo in
    match Persist.load graph assignment_file with
    | Error e -> Format.fprintf ppf "error: %s@." e
    | Ok assignment -> (
      let subscribers =
        List.filter_map int_of_string_opt (String.split_on_char ',' subscribers)
      in
      let tree = Spt.delivery_tree graph ~root:src ~subscribers in
      match Select.select_fpa (Candidate.build assignment ~tree) with
      | None -> Format.fprintf ppf "error: tree overfills every candidate@."
      | Some c ->
        let net = Net.make assignment in
        let o =
          Run.deliver net ~src ~table:c.Candidate.table
            ~zfilter:c.Candidate.zfilter ~tree
        in
        Format.fprintf ppf
          "table %d, fill %.3f; delivered %d/%d; %d traversals (eff %.1f%%), fpr %.2f%%@."
          c.Candidate.table
          (Candidate.fill_factor c)
          (List.length (List.filter (fun v -> o.Run.reached.(v)) subscribers))
          (List.length subscribers) o.Run.link_traversals
          (100.0 *. Run.forwarding_efficiency o ~tree)
          (100.0 *. Run.false_positive_rate o);
        Format.fprintf ppf "zFilter: %s@."
          (Lipsin_bloom.Zfilter.to_hex c.Candidate.zfilter))
  in
  Cmd.v (Cmd.info "forward" ~doc)
    Term.(
      const run
      $ file_arg ~doc:"Edge-list file." "topo"
      $ file_arg ~doc:"Assignment file." "assignment"
      $ Arg.(value & opt int 0 & info [ "src" ] ~docv:"NODE" ~doc:"Publisher node.")
      $ Arg.(value & opt string "1" & info [ "subscribers" ] ~docv:"A,B,C" ~doc:"Comma-separated subscriber nodes."))

(* ---- runtime telemetry ---- *)

module Obs = Lipsin_obs.Obs
module Serve = Lipsin_serve.Serve
module Bitvec = Lipsin_bitvec.Bitvec
module Zfilter = Lipsin_bloom.Zfilter

let engine_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("reference", `Reference); ("fast", `Fast);
             ("bitsliced", `Bitsliced); ("auto", `Auto) ])
        `Fast
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Forwarding engine: $(b,reference) (per-link subset test), \
           $(b,fast) (compiled row-major), $(b,bitsliced) (transposed \
           word-parallel), or $(b,auto) (bit-sliced at high-degree \
           nodes, scalar elsewhere).")

let sample_arg =
  Arg.(
    value & opt int 1
    & info [ "sample" ] ~docv:"N"
        ~doc:
          "Trace 1-in-$(docv) publications (per-publication sampling; 1 \
           traces everything, 0 disables the trace ring).")

(* The telemetry workload shared by `metrics`, `serve` and `soak`: warm
   the loop-prevention machinery on a side net so the loop-cache series
   are non-zero, then cycle precomputed delivery jobs through the
   selected engine, spreading them over all d forwarding tables.
   Returns the assignment too so `soak` can build a service over it. *)
let telemetry_workload () =
  let graph = As_presets.as6461 () in
  let assignment = Assignment.make Lit.default (Rng.of_int 1) graph in
  let net = Net.make assignment in
  let d = Lit.default.Lipsin_bloom.Lit.d in
  let rng = Rng.of_int 42 in
  let n_work = 64 in
  let work =
    Array.init n_work (fun i ->
        let users = 4 + (i mod 13) in
        let picks = Rng.sample rng users (Graph.node_count graph) in
        let root = picks.(0) in
        let subs = Array.to_list (Array.sub picks 1 (users - 1)) in
        let tree = Spt.delivery_tree graph ~root ~subscribers:subs in
        let table = i mod d in
        let c = Candidate.build_one assignment ~tree ~table in
        (root, table, c.Candidate.zfilter, tree))
  in
  (assignment, net, work)

let warm_loop_cache engine =
  (* On a small side net with the fill guard relaxed, an all-ones
     filter matches every port, and TTL mode revisits nodes from
     different in-links, so the cached out-decision disagrees with the
     second arrival. *)
  let all_ones =
    let bv = Bitvec.create Lit.default.Lipsin_bloom.Lit.m in
    Bitvec.set_all bv;
    Zfilter.of_bitvec bv
  in
  let loop_net =
    let g =
      Generator.pref_attach ~rng:(Rng.of_int 9) ~nodes:16 ~edges:27
        ~max_degree:6 ()
    in
    Net.make ~fill_limit:1.0 (Assignment.make Lit.default (Rng.of_int 9) g)
  in
  for _ = 1 to 2 do
    ignore
      (Run.deliver ~engine ~mode:(Run.Ttl 6) loop_net ~src:0 ~table:0
         ~zfilter:all_ones ~tree:[])
  done

let publish ~engine net work ~publications ~last =
  let n_work = Array.length work in
  for i = 0 to publications - 1 do
    let src, table, zfilter, tree = work.(i mod n_work) in
    let o = Run.deliver ~engine net ~src ~table ~zfilter ~tree in
    if o.Run.packet_id >= 0 then last := o.Run.packet_id
  done

let set_sampling sample =
  if sample <= 0 then Obs.Trace.set_recording false
  else Obs.Trace.set_sampling sample

(* Histogram quantile one-liners (p50/p95/p99/p999), appended to the
   text exposition as comments — the human-readable face of the
   ROADMAP's p99/p999 soak gates. *)
let quantile_comments () =
  let b = Buffer.create 512 in
  List.iter
    (fun (name, labels, v) ->
      match v with
      | Obs.Export.Vhistogram s when s.Obs.Histogram.count > 0 ->
        Buffer.add_string b
          (Printf.sprintf
             "# quantiles %s%s count=%d p50=%g p95=%g p99=%g p999=%g max=%g\n"
             name
             (match labels with
             | [] -> ""
             | l ->
               "{"
               ^ String.concat ","
                   (List.map (fun (k, v) -> k ^ "=" ^ v) l)
               ^ "}")
             s.Obs.Histogram.count s.Obs.Histogram.p50 s.Obs.Histogram.p95
             s.Obs.Histogram.p99 s.Obs.Histogram.p999 s.Obs.Histogram.max)
      | _ -> ())
    (Obs.Export.samples ());
  Buffer.contents b

let metrics_cmd =
  let doc =
    "Run a telemetry-instrumented publication workload and print the \
     metrics registry (Prometheus text by default)."
  in
  let run publications engine json trace_n sample out =
    Obs.Sink.set Obs.Sink.Memory;
    set_sampling sample;
    (match out with Some path -> Obs.Export.dump_on_exit ~path | None -> ());
    warm_loop_cache engine;
    let _, net, work = telemetry_workload () in
    let last = ref (-1) in
    publish ~engine net work ~publications ~last;
    if json then print_string (Obs.Export.json ())
    else begin
      print_string (Obs.Export.prometheus ());
      print_string (quantile_comments ())
    end;
    if trace_n > 0 then begin
      Printf.printf "# per-hop trace of publication %d (first %d events)\n"
        !last trace_n;
      List.iteri
        (fun i e -> if i < trace_n then print_endline (Obs.Trace.to_string e))
        (Obs.Trace.packet_events !last)
    end
  in
  Cmd.v (Cmd.info "metrics" ~doc)
    Term.(
      const run
      $ Arg.(
          value & opt int 10_000
          & info [ "publications" ] ~docv:"N"
              ~doc:"Publications to deliver through the selected engine.")
      $ engine_arg
      $ Arg.(
          value & flag
          & info [ "json" ] ~doc:"Emit the registry as JSON instead.")
      $ Arg.(
          value & opt int 0
          & info [ "trace" ] ~docv:"N"
              ~doc:"Also dump up to $(docv) per-hop trace events of the last publication.")
      $ sample_arg
      $ Arg.(
          value & opt (some string) None
          & info [ "out" ] ~docv:"FILE"
              ~doc:"Also write the Prometheus exposition to $(docv) on exit."))

let serve_cmd =
  let doc =
    "Serve live metrics over HTTP (/metrics, /healthz, /snapshot) while \
     driving the telemetry workload."
  in
  let run host port publications engine sample rounds self_check flight_dir =
    Obs.Sink.set Obs.Sink.Memory;
    set_sampling sample;
    (match flight_dir with
    | Some dir -> Obs.Flight.configure ~dir ()
    | None -> ());
    warm_loop_cache engine;
    let _, net, work = telemetry_workload () in
    let state = Serve.make () in
    let server = Serve.start ~host ~port state in
    Printf.eprintf "lipsin: serving on %s:%d (sample 1-in-%d)\n%!" host
      (Serve.port server) (max 1 sample);
    let last = ref (-1) in
    if self_check then begin
      (* CI smoke mode: publish one batch, scrape every endpoint
         through a real client, lint the exposition payload, exit
         non-zero on any finding. *)
      publish ~engine net work ~publications ~last;
      let results = Serve.self_check server in
      let failures = ref 0 in
      List.iter
        (fun (path, status, body) ->
          Printf.printf "%s -> %d (%d bytes)\n" path status
            (String.length body);
          if status <> 200 then incr failures;
          if String.equal path "/metrics" then begin
            let findings = Serve.lint_exposition body in
            List.iter
              (fun f ->
                incr failures;
                Printf.printf "  exposition lint: %s\n" f)
              findings;
            if findings = [] then
              Printf.printf "  exposition lint: clean\n"
          end)
        results;
      Serve.stop server;
      if !failures > 0 then exit 1
    end
    else begin
      let forever = rounds <= 0 in
      let r = ref 0 in
      while forever || !r < rounds do
        publish ~engine net work ~publications ~last;
        incr r;
        Unix.sleepf 0.05
      done;
      Serve.stop server
    end
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run
      $ Arg.(
          value & opt string "127.0.0.1"
          & info [ "host" ] ~docv:"HOST" ~doc:"Bind address.")
      $ Arg.(
          value & opt int 0
          & info [ "port" ] ~docv:"PORT"
              ~doc:"Listen port (0 picks an ephemeral port).")
      $ Arg.(
          value & opt int 1_000
          & info [ "publications" ] ~docv:"N"
              ~doc:"Publications per workload round.")
      $ engine_arg
      $ sample_arg
      $ Arg.(
          value & opt int 0
          & info [ "rounds" ] ~docv:"R"
              ~doc:"Workload rounds before exiting (0 = serve forever).")
      $ Arg.(
          value & flag
          & info [ "self-check" ]
              ~doc:
                "Publish one round, scrape every endpoint through a real \
                 client, lint the /metrics payload, then exit (non-zero on \
                 findings).")
      $ Arg.(
          value & opt (some string) None
          & info [ "flight-dir" ] ~docv:"DIR"
              ~doc:"Dump flight-recorder post-mortems into $(docv)."))

let soak_cmd =
  let doc =
    "Sustained-throughput soak: drive the telemetry workload through \
     the persistent forwarding service (long-lived domain pool, \
     work-stealing shards, arena-recycled delivery)."
  in
  let run publications engine workers batch sample =
    Obs.Sink.set Obs.Sink.Memory;
    set_sampling sample;
    let assignment, _net, work = telemetry_workload () in
    let n_work = Array.length work in
    let job_of i =
      let src, table, zfilter, tree = work.(i mod n_work) in
      { Lipsin_sim.Service.job_src = src; job_table = table;
        job_zfilter = zfilter; job_tree = tree }
    in
    let svc = Lipsin_sim.Service.create ?workers ~engine assignment in
    Printf.printf
      "soak: %d publications through %d workers (%d-job batches)\n%!"
      publications
      (Lipsin_sim.Service.workers svc)
      batch;
    let sent = ref 0 in
    let steals = ref 0 in
    let sampled = ref 0 in
    let minor = ref 0.0 in
    let t0 = Unix.gettimeofday () in
    while !sent < publications do
      let count = min batch (publications - !sent) in
      let jobs = Array.init count (fun i -> job_of (!sent + i)) in
      let st = Lipsin_sim.Service.run svc jobs in
      sent := !sent + st.Lipsin_sim.Service.st_jobs;
      steals := !steals + st.Lipsin_sim.Service.st_steals;
      sampled := !sampled + st.Lipsin_sim.Service.st_sampled;
      minor := !minor +. st.Lipsin_sim.Service.st_minor_words
    done;
    let dt = Unix.gettimeofday () -. t0 in
    Lipsin_sim.Service.shutdown svc;
    Printf.printf
      "  %d publications in %.2f s = %.1f ops/sec, %.2f minor words/op, \
       %d steals, %d trace-sampled\n"
      !sent dt
      (float_of_int !sent /. dt)
      (!minor /. float_of_int (max 1 !sent))
      !steals !sampled;
    print_string (quantile_comments ())
  in
  Cmd.v (Cmd.info "soak" ~doc)
    Term.(
      const run
      $ Arg.(
          value & opt int 200_000
          & info [ "publications" ] ~docv:"N"
              ~doc:"Publications to deliver through the service.")
      $ engine_arg
      $ Arg.(
          value & opt (some int) None
          & info [ "workers" ] ~docv:"W"
              ~doc:"Pool size (default: recommended domain count).")
      $ Arg.(
          value & opt int 8192
          & info [ "batch" ] ~docv:"B" ~doc:"Jobs per dispatched batch.")
      $ Arg.(
          value & opt int 1024
          & info [ "sample" ] ~docv:"N"
              ~doc:
                "Trace 1-in-$(docv) publications (sampled jobs take the \
                 full allocating path; the rest run the zero-alloc \
                 arena loop).  0 disables the trace ring."))

let () =
  let info =
    Cmd.info "lipsin_cli" ~version:"1.0.0"
      ~doc:"Reproduce the LIPSIN (SIGCOMM 2009) evaluation."
  in
  let group =
    Cmd.group info
      [ table1; table2; table3; fig5; fig6; table4; table5; ftmem; security;
        recovery; interdomain; workload; ablation; splitting; adaptive;
        caching; congestion; bootstrap; latency; goodput; multipath;
        directory; fec; churn; loops; recursive; all; topo_gen; topo_stats; assign_gen;
        forward_cmd; metrics_cmd; serve_cmd; soak_cmd ]
  in
  exit (Cmd.eval group)
