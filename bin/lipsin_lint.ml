(* lipsin-lint — project-invariant static analysis, fastpath blob
   auditing and whole-deployment verification.

   Lint mode (default):
     lipsin_lint [--format human|json] [--list-rules] PATH...
   scans the given files/directories for .ml sources (plus .mli and
   dune files for coverage and reachability), applies the project
   rules, and exits 1 if any finding survives suppression.

   Audit mode:
     lipsin_lint --audit --edges FILE --assignment FILE [--fill-limit F]
   loads a persisted topology (Edge_list) and LIT assignment (Persist),
   compiles every node's fast path and structurally verifies the
   compiled blobs with Analysis.Audit; exits 2 on any violation.

   Netcheck mode:
     lipsin_lint --netcheck --edges FILE --assignment FILE
                 [--partition FILE] [--fill-limit F] [--samples N]
                 [--seed N] [--strict]
   statically verifies the deployment itself with Analysis.Netcheck:
   LIT anomalies, loop admissibility per table, recovery soundness,
   and (with --samples) the candidates of N random delivery trees.
   With --partition, also loads a persisted Stagecut partition and
   proves its exactly-once property (stage coverage, stitch wiring,
   cross-stage loop/duplicate freedom) against the same deployment.
   Findings flow through the linter's human/JSON reporters; exits 3 on
   Error-severity findings (any finding with --strict).

   Alloc / races / bounds modes:
     lipsin_lint --alloc [--races] [--bounds] [--format human|json] [CMT_DIR...]
   typed-tree passes over the .cmt files dune produces (run `dune
   build` first; default root _build/default/lib): --alloc proves
   [@lipsin.noalloc] functions allocation-free (exit 4 on findings),
   --races classifies every mutable write reachable from Domain.spawn
   bodies and reports unsanctioned shared writes (exit 5), --bounds
   proves every index expression reachable from a [@lipsin.inbounds]
   root in range (exit 6).  All can be combined; exit-code precedence
   is alloc > races > bounds.

   Exit codes (distinct per mode so CI can tell them apart):
     0   clean
     1   lint findings
     2   audit violations
     3   netcheck errors (any finding with --strict)
     4   alloccheck findings (a noalloc proof failed)
     5   racecheck findings (unsanctioned shared write)
     6   boundscheck findings (an in-bounds proof failed)
     64  usage or I/O error *)

module Lint = Lipsin_linter.Lint
module Finding = Lipsin_linter.Finding
module Audit = Lipsin_analysis.Audit
module Netcheck = Lipsin_analysis.Netcheck
module Edge_list = Lipsin_topology.Edge_list
module Graph = Lipsin_topology.Graph
module Persist = Lipsin_core.Persist
module Node_engine = Lipsin_forwarding.Node_engine
module Fastpath = Lipsin_forwarding.Fastpath
module Assignment = Lipsin_core.Assignment
module Adaptive = Lipsin_core.Adaptive
module Lit = Lipsin_bloom.Lit

let exit_usage = 64

let help_text =
  "usage: lipsin_lint [--format human|json] [--list-rules] PATH...\n\
  \       lipsin_lint --audit --edges FILE --assignment FILE [--fill-limit F]\n\
  \       lipsin_lint --netcheck --edges FILE --assignment FILE [--partition FILE]\n\
  \                   [--fill-limit F] [--samples N] [--seed N] [--strict]\n\
  \       lipsin_lint --alloc [--races] [--bounds] [--format human|json] [CMT_DIR...]\n\
   \n\
   modes:\n\
  \  (default)    lint .ml/.mli/dune sources against the project rules\n\
  \  --audit      structurally verify every node's compiled blobs (row-major\n\
  \               fastpath and bit-sliced transposed tables)\n\
  \  --netcheck   statically verify the deployment: LIT collisions/subsets,\n\
  \               admissible forwarding loops per table, recovery soundness,\n\
  \               and (with --samples N) loop/false-delivery/fill checks on\n\
  \               all candidates of N random delivery trees\n\
  \  --alloc      prove [@lipsin.noalloc] functions allocation-free from the\n\
  \               .cmt typed trees (run `dune build` first; CMT_DIRs default\n\
  \               to _build/default/lib)\n\
  \  --races      classify every mutable write reachable from a Domain.spawn\n\
  \               body; report unsanctioned shared writes with witness paths\n\
  \  --bounds     prove every index expression reachable from a\n\
  \               [@lipsin.inbounds] root in range (affine abstract\n\
  \               interpretation over the .cmt typed trees); unproven\n\
  \               accesses and unjustified suppressions are findings\n\
   \n\
   options:\n\
  \  --format human|json   report format (lint and netcheck modes)\n\
  \  --list-rules          print the lint rules and exit\n\
  \  --edges FILE          persisted topology (Edge_list format)\n\
  \  --assignment FILE     persisted LIT assignment (Persist format)\n\
  \  --partition FILE      netcheck: persisted partitioned zFilter plan to\n\
  \                        verify for exactly-once delivery\n\
  \  --fill-limit F        fill-factor drop threshold (default 0.7)\n\
  \  --samples N           netcheck: random delivery trees to verify (default 8)\n\
  \  --seed N              netcheck: sampling seed (default 17)\n\
  \  --strict              netcheck: exit 3 on any finding, not just errors\n\
   \n\
   exit codes:\n\
  \  0   clean\n\
  \  1   lint findings\n\
  \  2   audit violations\n\
  \  3   netcheck errors (any finding with --strict)\n\
  \  4   alloccheck findings (a noalloc proof failed)\n\
  \  5   racecheck findings (unsanctioned shared write)\n\
  \  6   boundscheck findings (an in-bounds proof failed)\n\
  \  64  usage or I/O error\n"

let usage () =
  prerr_string help_text;
  exit exit_usage

let help () =
  print_string help_text;
  exit 0

let list_rules () =
  List.iter
    (fun rule ->
      Printf.printf "%-16s %s\n"
        (Lipsin_linter.Rules.name rule)
        (Lipsin_linter.Rules.describe rule))
    (Lint.default_rules ~dune_files:[] ());
  Printf.printf "%-16s %s\n" Lint.parse_error_rule
    "pseudo-rule: the file does not parse";
  exit 0

let run_lint ~format ~paths =
  let missing = List.filter (fun p -> not (Sys.file_exists p)) paths in
  if missing <> [] then begin
    List.iter (Printf.eprintf "lipsin_lint: no such path: %s\n") missing;
    exit exit_usage
  end;
  let files = Lint.load_paths paths in
  let findings = Lint.run ~files () in
  (match format with
  | `Human -> print_string (Finding.report_human findings)
  | `Json -> print_string (Finding.report_json findings));
  exit (match findings with [] -> 0 | _ :: _ -> 1)

let default_cmt_roots = [ "_build/default/lib" ]

let run_typed ~format ~paths ~alloc ~races ~bounds =
  let roots = if paths = [] then default_cmt_roots else paths in
  let missing = List.filter (fun p -> not (Sys.file_exists p)) roots in
  if missing <> [] then begin
    List.iter
      (Printf.eprintf
         "lipsin_lint: no such path: %s (run `dune build` first?)\n")
      missing;
    exit exit_usage
  end;
  let units = Lipsin_linter.Typed.load_units roots in
  if units = [] then begin
    Printf.eprintf
      "lipsin_lint: no .cmt files under %s (run `dune build` first)\n"
      (String.concat " " roots);
    exit exit_usage
  end;
  let alloc_findings, alloc_roots =
    if alloc then begin
      let roots, fs = Lipsin_linter.Alloccheck.run_units units in
      (fs, roots)
    end
    else ([], [])
  in
  let race_findings, spawn_sites =
    if races then begin
      let sites, fs = Lipsin_linter.Racecheck.run_units units in
      (fs, sites)
    end
    else ([], 0)
  in
  let bounds_findings, bounds_stats =
    if bounds then begin
      let stats, fs = Lipsin_linter.Boundscheck.run_units units in
      (fs, Some stats)
    end
    else ([], None)
  in
  let findings = alloc_findings @ race_findings @ bounds_findings in
  (match format with
  | `Human -> print_string (Finding.report_human findings)
  | `Json -> print_string (Finding.report_json findings));
  if alloc then
    Printf.eprintf "alloccheck: %d noalloc roots, %d findings\n"
      (List.length alloc_roots)
      (List.length alloc_findings);
  if races then
    Printf.eprintf "racecheck: %d spawn sites, %d findings\n" spawn_sites
      (List.length race_findings);
  (match bounds_stats with
  | Some s ->
    Printf.eprintf
      "boundscheck: %d inbounds roots, %d obligations (%d proved, %d \
       suppressed), %d findings\n"
      (List.length s.Lipsin_linter.Boundscheck.st_roots)
      s.st_obligations s.st_proved s.st_suppressed
      (List.length bounds_findings)
  | None -> ());
  if alloc_findings <> [] then exit 4
  else if race_findings <> [] then exit 5
  else if bounds_findings <> [] then exit 6
  else exit 0

let load_deployment ~edges ~assignment =
  let graph =
    try Edge_list.load edges
    with Sys_error msg | Invalid_argument msg ->
      Printf.eprintf "lipsin_lint: cannot load topology: %s\n" msg;
      exit exit_usage
  in
  let asg =
    match Persist.load graph assignment with
    | Ok asg -> asg
    | Error msg ->
      Printf.eprintf "lipsin_lint: cannot load assignment: %s\n" msg;
      exit exit_usage
    | exception Sys_error msg ->
      Printf.eprintf "lipsin_lint: cannot load assignment: %s\n" msg;
      exit exit_usage
  in
  (graph, asg)

let run_audit ~edges ~assignment ~fill_limit =
  let graph, asg = load_deployment ~edges ~assignment in
  let nodes = Graph.node_count graph in
  let violations = ref 0 in
  for node = 0 to nodes - 1 do
    let engine =
      match fill_limit with
      | Some fill_limit -> Node_engine.create ~fill_limit asg node
      | None -> Node_engine.create asg node
    in
    let fp = Fastpath.compile engine in
    List.iter
      (fun v ->
        incr violations;
        Printf.printf "node %d: %s\n" node (Audit.to_string v))
      (Audit.audit fp);
    let bs = Lipsin_forwarding.Bitsliced.compile engine in
    List.iter
      (fun v ->
        incr violations;
        Printf.printf "node %d (bitsliced): %s\n" node (Audit.to_string v))
      (Audit.audit_bitsliced bs)
  done;
  if !violations = 0 then
    Printf.printf
      "audit clean: %d nodes, every compiled table verified (row-major and bit-sliced)\n"
      nodes
  else Printf.printf "%d violations\n" !violations;
  exit (if !violations = 0 then 0 else 2)

let check_partition_file ~graph ~asg ~fill_limit pfile =
  let part =
    match Persist.load_partition graph pfile with
    | Ok part -> part
    | Error msg ->
      Printf.eprintf "lipsin_lint: cannot load partition: %s\n" msg;
      exit exit_usage
    | exception Sys_error msg ->
      Printf.eprintf "lipsin_lint: cannot load partition: %s\n" msg;
      exit exit_usage
  in
  (* The per-link nonces are the whole identity of a constant-k
     deployment, so the persisted assignment reconstructs the full
     adaptive width family the partition's stages draw from. *)
  let p = Assignment.params asg in
  let k = p.Lit.k_for_table.(0) in
  if not (Array.for_all (fun k' -> k' = k) p.Lit.k_for_table) then begin
    Printf.eprintf
      "lipsin_lint: --partition needs a constant-k assignment\n";
    exit exit_usage
  end;
  let adaptive =
    Adaptive.make_with_nonces ~d:p.Lit.d ~k (Assignment.nonces asg) graph
  in
  match fill_limit with
  | Some fill_limit -> Netcheck.check_partition ~fill_limit adaptive part
  | None -> Netcheck.check_partition adaptive part

let run_netcheck ~format ~edges ~assignment ~partition ~fill_limit ~samples
    ~seed ~strict =
  let graph, asg = load_deployment ~edges ~assignment in
  let model =
    match fill_limit with
    | Some fill_limit -> Netcheck.model_of_assignment ~fill_limit asg
    | None -> Netcheck.model_of_assignment asg
  in
  let rng = Lipsin_util.Rng.of_int seed in
  let findings = Netcheck.check_deployment ~samples ~rng model in
  let findings =
    match partition with
    | None -> findings
    | Some pfile -> findings @ check_partition_file ~graph ~asg ~fill_limit pfile
  in
  let reported =
    List.map (Netcheck.to_lint_finding ~deployment:assignment) findings
  in
  (match format with
  | `Human -> print_string (Finding.report_human reported)
  | `Json -> print_string (Finding.report_json reported));
  let failing = if strict then findings else Netcheck.errors findings in
  exit (match failing with [] -> 0 | _ :: _ -> 3)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* a ref rather than yet another threaded label: the parser already
     carries eleven *)
  let bounds = ref false in
  let rec parse args ~format ~paths ~mode ~edges ~assignment ~partition
      ~fill_limit ~samples ~seed ~strict ~alloc ~races =
    match args with
    | [] -> (
      match mode with
      | `Audit -> (
        match (edges, assignment) with
        | Some edges, Some assignment -> run_audit ~edges ~assignment ~fill_limit
        | _ ->
          prerr_endline "lipsin_lint: --audit needs --edges and --assignment";
          exit exit_usage)
      | `Netcheck -> (
        match (edges, assignment) with
        | Some edges, Some assignment ->
          run_netcheck ~format ~edges ~assignment ~partition ~fill_limit
            ~samples ~seed ~strict
        | _ ->
          prerr_endline "lipsin_lint: --netcheck needs --edges and --assignment";
          exit exit_usage)
      | `Lint ->
        if alloc || races || !bounds then
          run_typed ~format ~paths:(List.rev paths) ~alloc ~races
            ~bounds:!bounds
        else if paths = [] then usage ()
        else run_lint ~format ~paths:(List.rev paths))
    | "--help" :: _ | "-h" :: _ -> help ()
    | "--list-rules" :: _ -> list_rules ()
    | "--format" :: fmt :: rest ->
      let format =
        match fmt with "human" -> `Human | "json" -> `Json | _ -> usage ()
      in
      parse rest ~format ~paths ~mode ~edges ~assignment ~partition
        ~fill_limit ~samples ~seed ~strict ~alloc ~races
    | "--audit" :: rest ->
      parse rest ~format ~paths ~mode:`Audit ~edges ~assignment ~partition
        ~fill_limit ~samples ~seed ~strict ~alloc ~races
    | "--netcheck" :: rest ->
      parse rest ~format ~paths ~mode:`Netcheck ~edges ~assignment ~partition
        ~fill_limit ~samples ~seed ~strict ~alloc ~races
    | "--alloc" :: rest ->
      parse rest ~format ~paths ~mode ~edges ~assignment ~partition
        ~fill_limit ~samples ~seed ~strict ~alloc:true ~races
    | "--races" :: rest ->
      parse rest ~format ~paths ~mode ~edges ~assignment ~partition
        ~fill_limit ~samples ~seed ~strict ~alloc ~races:true
    | "--bounds" :: rest ->
      bounds := true;
      parse rest ~format ~paths ~mode ~edges ~assignment ~partition
        ~fill_limit ~samples ~seed ~strict ~alloc ~races
    | "--strict" :: rest ->
      parse rest ~format ~paths ~mode ~edges ~assignment ~partition
        ~fill_limit ~samples ~seed ~strict:true ~alloc ~races
    | "--edges" :: file :: rest ->
      parse rest ~format ~paths ~mode ~edges:(Some file) ~assignment
        ~partition ~fill_limit ~samples ~seed ~strict ~alloc ~races
    | "--assignment" :: file :: rest ->
      parse rest ~format ~paths ~mode ~edges ~assignment:(Some file)
        ~partition ~fill_limit ~samples ~seed ~strict ~alloc ~races
    | "--partition" :: file :: rest ->
      parse rest ~format ~paths ~mode ~edges ~assignment
        ~partition:(Some file) ~fill_limit ~samples ~seed ~strict ~alloc ~races
    | "--fill-limit" :: v :: rest -> (
      match float_of_string_opt v with
      | Some f ->
        parse rest ~format ~paths ~mode ~edges ~assignment ~partition
          ~fill_limit:(Some f) ~samples ~seed ~strict ~alloc ~races
      | None -> usage ())
    | "--samples" :: v :: rest -> (
      match int_of_string_opt v with
      | Some n when n >= 0 ->
        parse rest ~format ~paths ~mode ~edges ~assignment ~partition
          ~fill_limit ~samples:n ~seed ~strict ~alloc ~races
      | _ -> usage ())
    | "--seed" :: v :: rest -> (
      match int_of_string_opt v with
      | Some n ->
        parse rest ~format ~paths ~mode ~edges ~assignment ~partition
          ~fill_limit ~samples ~seed:n ~strict ~alloc ~races
      | None -> usage ())
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
      Printf.eprintf "lipsin_lint: unknown option %s\n" arg;
      usage ()
    | path :: rest ->
      parse rest ~format ~paths:(path :: paths) ~mode ~edges ~assignment
        ~partition ~fill_limit ~samples ~seed ~strict ~alloc ~races
  in
  parse args ~format:`Human ~paths:[] ~mode:`Lint ~edges:None ~assignment:None
    ~partition:None ~fill_limit:None ~samples:8 ~seed:17 ~strict:false
    ~alloc:false ~races:false
