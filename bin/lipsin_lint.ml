(* lipsin-lint — project-invariant static analysis and fastpath blob
   auditing.

   Lint mode (default):
     lipsin_lint [--format human|json] [--list-rules] PATH...
   scans the given files/directories for .ml sources (plus .mli and
   dune files for coverage and reachability), applies the project
   rules, and exits 1 if any finding survives suppression.

   Audit mode:
     lipsin_lint --audit --edges FILE --assignment FILE [--fill-limit F]
   loads a persisted topology (Edge_list) and LIT assignment (Persist),
   compiles every node's fast path and structurally verifies the
   compiled blobs with Analysis.Audit; exits 1 on any violation.

   Exit codes: 0 clean, 1 findings/violations, 2 usage or I/O error. *)

module Lint = Lipsin_linter.Lint
module Finding = Lipsin_linter.Finding
module Audit = Lipsin_analysis.Audit
module Edge_list = Lipsin_topology.Edge_list
module Graph = Lipsin_topology.Graph
module Persist = Lipsin_core.Persist
module Node_engine = Lipsin_forwarding.Node_engine
module Fastpath = Lipsin_forwarding.Fastpath

let usage () =
  prerr_endline
    "usage: lipsin_lint [--format human|json] [--list-rules] PATH...\n\
    \       lipsin_lint --audit --edges FILE --assignment FILE [--fill-limit F]";
  exit 2

let list_rules () =
  List.iter
    (fun rule ->
      Printf.printf "%-16s %s\n"
        (Lipsin_linter.Rules.name rule)
        (Lipsin_linter.Rules.describe rule))
    (Lint.default_rules ~dune_files:[] ());
  Printf.printf "%-16s %s\n" Lint.parse_error_rule
    "pseudo-rule: the file does not parse";
  exit 0

let run_lint ~format ~paths =
  let missing = List.filter (fun p -> not (Sys.file_exists p)) paths in
  if missing <> [] then begin
    List.iter (Printf.eprintf "lipsin_lint: no such path: %s\n") missing;
    exit 2
  end;
  let files = Lint.load_paths paths in
  let findings = Lint.run ~files () in
  (match format with
  | `Human -> print_string (Finding.report_human findings)
  | `Json -> print_string (Finding.report_json findings));
  exit (match findings with [] -> 0 | _ :: _ -> 1)

let run_audit ~edges ~assignment ~fill_limit =
  let graph =
    try Edge_list.load edges
    with Sys_error msg | Invalid_argument msg ->
      Printf.eprintf "lipsin_lint: cannot load topology: %s\n" msg;
      exit 2
  in
  let asg =
    match Persist.load graph assignment with
    | Ok asg -> asg
    | Error msg ->
      Printf.eprintf "lipsin_lint: cannot load assignment: %s\n" msg;
      exit 2
    | exception Sys_error msg ->
      Printf.eprintf "lipsin_lint: cannot load assignment: %s\n" msg;
      exit 2
  in
  let nodes = Graph.node_count graph in
  let violations = ref 0 in
  for node = 0 to nodes - 1 do
    let engine =
      match fill_limit with
      | Some fill_limit -> Node_engine.create ~fill_limit asg node
      | None -> Node_engine.create asg node
    in
    let fp = Fastpath.compile engine in
    List.iter
      (fun v ->
        incr violations;
        Printf.printf "node %d: %s\n" node (Audit.to_string v))
      (Audit.audit fp)
  done;
  if !violations = 0 then
    Printf.printf "audit clean: %d nodes, every compiled table verified\n" nodes
  else Printf.printf "%d violations\n" !violations;
  exit (if !violations = 0 then 0 else 1)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse args ~format ~paths ~audit ~edges ~assignment ~fill_limit =
    match args with
    | [] ->
      if audit then
        match (edges, assignment) with
        | Some edges, Some assignment -> run_audit ~edges ~assignment ~fill_limit
        | _ ->
          prerr_endline "lipsin_lint: --audit needs --edges and --assignment";
          exit 2
      else if paths = [] then usage ()
      else run_lint ~format ~paths:(List.rev paths)
    | "--help" :: _ | "-h" :: _ -> usage ()
    | "--list-rules" :: _ -> list_rules ()
    | "--format" :: fmt :: rest ->
      let format =
        match fmt with
        | "human" -> `Human
        | "json" -> `Json
        | _ -> usage ()
      in
      parse rest ~format ~paths ~audit ~edges ~assignment ~fill_limit
    | "--audit" :: rest ->
      parse rest ~format ~paths ~audit:true ~edges ~assignment ~fill_limit
    | "--edges" :: file :: rest ->
      parse rest ~format ~paths ~audit ~edges:(Some file) ~assignment ~fill_limit
    | "--assignment" :: file :: rest ->
      parse rest ~format ~paths ~audit ~edges ~assignment:(Some file) ~fill_limit
    | "--fill-limit" :: v :: rest -> (
      match float_of_string_opt v with
      | Some f ->
        parse rest ~format ~paths ~audit ~edges ~assignment ~fill_limit:(Some f)
      | None -> usage ())
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
      Printf.eprintf "lipsin_lint: unknown option %s\n" arg;
      usage ()
    | path :: rest ->
      parse rest ~format ~paths:(path :: paths) ~audit ~edges ~assignment
        ~fill_limit
  in
  parse args ~format:`Human ~paths:[] ~audit:false ~edges:None ~assignment:None
    ~fill_limit:None
