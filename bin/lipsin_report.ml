(* lipsin_report: render the repo's BENCH_PR*.json trajectory (plus an
   optional Obs snapshot) into one markdown benchmark report, and
   schema-check the files on the way.  CI runs `--check` over every
   file and uploads the rendered markdown as an artifact. *)

module Report = Lipsin_reporting.Report

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let bench_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f ->
         String.length f > 9
         && String.equal (String.sub f 0 6) "BENCH_"
         && Filename.check_suffix f ".json")
  |> List.sort String.compare
  |> List.map (Filename.concat dir)

let usage = "lipsin_report [--dir DIR] [--obs FILE] [-o FILE] [--check]"

let () =
  let dir = ref "." in
  let obs_file = ref "" in
  let out_file = ref "" in
  let check_only = ref false in
  let explicit = ref [] in
  Arg.parse
    [
      ("--dir", Arg.Set_string dir, "DIR directory holding BENCH_*.json (default .)");
      ("--obs", Arg.Set_string obs_file, "FILE Obs snapshot to append verbatim");
      ("-o", Arg.Set_string out_file, "FILE write the markdown here (default stdout)");
      ("--check", Arg.Set check_only, " schema-check only; non-zero exit on findings");
    ]
    (fun f -> explicit := f :: !explicit)
    usage;
  let files =
    match List.rev !explicit with [] -> bench_files !dir | fs -> fs
  in
  let parsed, failures =
    List.fold_left
      (fun (ok, bad) file ->
        match Report.Json.parse (read_file file) with
        | Ok json -> ((file, json) :: ok, bad)
        | Error msg ->
          (ok, Printf.sprintf "%s: JSON parse error: %s" file msg :: bad)
        | exception Sys_error msg -> (ok, (file ^ ": " ^ msg) :: bad))
      ([], []) files
  in
  let parsed = List.rev parsed in
  let schema_findings =
    List.concat_map
      (fun (file, json) -> Report.check_bench ~file json)
      parsed
  in
  let findings = List.rev failures @ schema_findings in
  List.iter (fun f -> Printf.eprintf "lipsin_report: %s\n" f) findings;
  if !check_only then begin
    Printf.printf "%d files checked, %d findings\n" (List.length files)
      (List.length findings);
    exit (if findings = [] then 0 else 1)
  end;
  let obs_snapshot =
    if String.equal !obs_file "" then None
    else
      match read_file !obs_file with
      | s -> Some s
      | exception Sys_error msg ->
        Printf.eprintf "lipsin_report: %s\n" msg;
        None
  in
  let md = Report.render ?obs_snapshot parsed in
  if String.equal !out_file "" then print_string md
  else begin
    let oc = open_out !out_file in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc md);
    Printf.printf "wrote %s (%d bench files, %d findings)\n" !out_file
      (List.length parsed) (List.length findings)
  end;
  if findings <> [] then exit 1
