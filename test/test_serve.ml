(* Tests for Lipsin_serve: the exposition-format conformance linter,
   the snapshot-diff state machine, and a live server round-trip over
   a real TCP socket (start, scrape every endpoint, stop). *)

module Obs = Lipsin_obs.Obs
module Serve = Lipsin_serve.Serve

let with_memory f =
  Obs.Sink.set Obs.Sink.Memory;
  Obs.Trace.set_recording true;
  Fun.protect ~finally:(fun () -> Obs.Sink.set Obs.Sink.Noop) f

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ---- exposition linter ---------------------------------------------- *)

let test_lint_accepts_own_exposition () =
  with_memory (fun () ->
      (* Populate with the nastiest names the registry will hold:
         escaped label values, histograms, multi-label families. *)
      Obs.Counter.add
        (Obs.Counter.make ~help:"with \\ and\nnewline"
           ~labels:[ ("path", "a\\b\"c\nd") ]
           "test_serve_nasty_total")
        3;
      Obs.Histogram.observe (Obs.Histogram.make "test_serve_hist") 1.5;
      let findings = Serve.lint_exposition (Obs.Export.prometheus ()) in
      Alcotest.(check (list string)) "clean" [] findings)

let expect_finding what payload =
  match Serve.lint_exposition payload with
  | [] -> Alcotest.failf "%s: linter accepted a broken payload" what
  | _ -> ()

let test_lint_rejections () =
  expect_finding "sample without TYPE" "foo_total 1\n";
  expect_finding "duplicate TYPE"
    "# TYPE foo counter\n# TYPE foo counter\nfoo 1\n";
  expect_finding "TYPE after samples"
    "# TYPE foo counter\nfoo 1\n# TYPE foo gauge\n";
  expect_finding "bad metric name"
    "# TYPE 9foo counter\n9foo 1\n";
  expect_finding "bad label syntax"
    "# TYPE foo counter\nfoo{bar=unquoted} 1\n";
  expect_finding "unparsable value"
    "# TYPE foo counter\nfoo{a=\"b\"} one\n";
  expect_finding "unterminated label value"
    "# TYPE foo counter\nfoo{a=\"b} 1\n";
  expect_finding "duplicate series"
    "# TYPE foo counter\nfoo{a=\"b\"} 1\nfoo{a=\"b\"} 2\n";
  expect_finding "histogram bucket without le"
    "# TYPE h histogram\nh_bucket{x=\"1\"} 1\nh_sum 1\nh_count 1\n";
  Alcotest.(check (list string)) "a correct payload stays clean" []
    (Serve.lint_exposition
       "# HELP foo a help line\n# TYPE foo counter\nfoo{a=\"b\\\"c\"} 1\n\
        # TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\n\
        h_sum 3.5\nh_count 2\n")

(* ---- snapshot diffs ------------------------------------------------- *)

let test_snapshot_diff () =
  with_memory (fun () ->
      let c = Obs.Counter.make "test_serve_snapshot_total" in
      let state = Serve.make () in
      let first = Serve.snapshot state in
      Alcotest.(check bool) "first snapshot is scrape 1" true
        (contains first "\"scrape\":1");
      let quiet = Serve.snapshot state in
      Alcotest.(check bool) "no delta while idle" false
        (contains quiet "test_serve_snapshot_total");
      Obs.Counter.add c 5;
      let active = Serve.snapshot state in
      Alcotest.(check bool) "bumped counter appears" true
        (contains active "test_serve_snapshot_total");
      Alcotest.(check bool) "with its delta" true (contains active "5"))

(* ---- live server round-trip ----------------------------------------- *)

let test_server_roundtrip () =
  with_memory (fun () ->
      Obs.Counter.add (Obs.Counter.make "test_serve_live_total") 2;
      let state = Serve.make () in
      let server = Serve.start ~port:0 state in
      Fun.protect
        ~finally:(fun () -> Serve.stop server)
        (fun () ->
          let port = Serve.port server in
          Alcotest.(check bool) "ephemeral port bound" true (port > 0);
          let status, body = Serve.get ~port "/healthz" in
          Alcotest.(check int) "healthz 200" 200 status;
          Alcotest.(check bool) "healthz ok" true (contains body "ok");
          let status, body = Serve.get ~port "/metrics" in
          Alcotest.(check int) "metrics 200" 200 status;
          Alcotest.(check (list string)) "exposition lints clean" []
            (Serve.lint_exposition body);
          Alcotest.(check bool) "our counter is served" true
            (contains body "test_serve_live_total");
          let status, body = Serve.get ~port "/snapshot" in
          Alcotest.(check int) "snapshot 200" 200 status;
          Alcotest.(check bool) "snapshot is json" true
            (contains body "\"scrape\"");
          let status, _ = Serve.get ~port "/nosuch" in
          Alcotest.(check int) "unknown path 404" 404 status;
          List.iter
            (fun (path, status, _) ->
              Alcotest.(check int) (path ^ " self-check") 200 status)
            (Serve.self_check server)))

let () =
  Alcotest.run "serve"
    [
      ( "lint",
        [
          Alcotest.test_case "accepts our exposition" `Quick
            test_lint_accepts_own_exposition;
          Alcotest.test_case "rejects malformed payloads" `Quick
            test_lint_rejections;
        ] );
      ( "snapshot",
        [ Alcotest.test_case "diffs between scrapes" `Quick test_snapshot_diff ] );
      ( "server",
        [ Alcotest.test_case "live round-trip" `Quick test_server_roundtrip ] );
    ]
