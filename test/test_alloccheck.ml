(* Tests for Lipsin_linter.Alloccheck — the typed-tree allocation-
   freedom prover behind `lipsin_lint --alloc`.

   Fixtures are typed in memory with Typed.type_impl against the
   stdlib-only initial environment, seeded with the violations the
   checker must catch (escaping closures, boxed float returns, tuples,
   partial applications, heapified refs) and the idioms it must prove
   clean (elimref while/for loops, whitelisted primitives, abort
   heads).  The qcheck property pins the suppression contract: a
   [@lipsin.allow_alloc]-marked site never reports, whatever the
   construct or the reason string. *)

module Typed = Lipsin_linter.Typed
module Alloccheck = Lipsin_linter.Alloccheck
module Finding = Lipsin_linter.Finding

let counter = ref 0

let check text =
  (* unique unit names: the compiler-libs persistent env caches typed
     units by module name *)
  incr counter;
  let name = Printf.sprintf "Allocfix%d" !counter in
  let u = Typed.type_impl ~name text in
  let _roots, findings = Alloccheck.run_units [ u ] in
  findings

let messages findings =
  List.map (fun (f : Finding.t) -> f.Finding.message) findings

let has_finding ~substr findings =
  List.exists
    (fun m ->
      let n = String.length substr in
      let rec scan i =
        i + n <= String.length m
        && (String.equal (String.sub m i n) substr || scan (i + 1))
      in
      scan 0)
    (messages findings)

let test_clean_loops () =
  let findings =
    check
      "let[@lipsin.noalloc] f n =\n\
      \  let acc = ref 0 in\n\
      \  let i = ref 0 in\n\
      \  while !i < n do\n\
      \    acc := !acc + !i;\n\
      \    incr i\n\
      \  done;\n\
      \  for j = 0 to n - 1 do\n\
      \    acc := !acc lxor j\n\
      \  done;\n\
      \  !acc\n"
  in
  Alcotest.(check int) "elimref while/for loop proves clean" 0
    (List.length findings)

let test_whitelisted_primitives () =
  let findings =
    check
      "let[@lipsin.noalloc] f b i =\n\
      \  if i < 0 then invalid_arg \"f\";\n\
      \  Char.code (Bytes.get b i) land 0xff\n"
  in
  Alcotest.(check int) "Bytes/Char primitives and abort heads are clean" 0
    (List.length findings)

let test_escaping_closure () =
  let findings =
    check
      "let[@lipsin.noalloc] f x =\n\
      \  let g = fun y -> x + y in\n\
      \  g 3\n"
  in
  Alcotest.(check bool) "closure allocation reported" true
    (has_finding ~substr:"closure allocation" findings)

let test_boxed_float_return () =
  let findings = check "let[@lipsin.noalloc] f x = x *. 2.0\n" in
  Alcotest.(check bool) "boxed float return reported" true
    (has_finding ~substr:"returns boxed float" findings)

let test_tuple_and_record () =
  let findings = check "let[@lipsin.noalloc] f x = (x, x)\n" in
  Alcotest.(check bool) "tuple allocation reported" true
    (has_finding ~substr:"tuple allocation" findings);
  let findings =
    check
      "type t = { a : int; b : int }\n\
       let[@lipsin.noalloc] f x = { a = x; b = x }\n"
  in
  Alcotest.(check bool) "record allocation reported" true
    (has_finding ~substr:"record allocation" findings)

let test_partial_application () =
  let findings =
    check "let g a b = a + b\nlet[@lipsin.noalloc] f x = g x\n"
  in
  Alcotest.(check bool) "partial application reported" true
    (has_finding ~substr:"partial application" findings)

let test_heapified_ref () =
  let findings =
    check
      "let[@lipsin.noalloc] f n =\n\
      \  let r = ref n in\n\
      \  ignore r;\n\
      \  !r\n"
  in
  Alcotest.(check bool) "escaping ref reported" true
    (has_finding ~substr:"escapes" findings)

let test_callgraph_chain () =
  let findings =
    check
      "let helper x = [| x |]\n\
       let[@lipsin.noalloc] f x = Array.length (helper x)\n"
  in
  Alcotest.(check bool) "allocation in callee reported" true
    (has_finding ~substr:"array allocation" findings);
  Alcotest.(check bool) "finding names the call chain" true
    (has_finding ~substr:"helper" findings)

let test_unknown_callee () =
  let findings =
    check "let[@lipsin.noalloc] f x = Printf.sprintf \"%d\" x\n"
  in
  Alcotest.(check bool) "unanalyzable external callee reported" true
    (has_finding ~substr:"neither whitelisted nor analyzable" findings)

let test_unannotated_ignored () =
  let findings = check "let f x = (x, x, [ x ])\n" in
  Alcotest.(check int) "no noalloc root, no findings" 0
    (List.length findings)

let test_binding_suppression () =
  let findings =
    check
      "let[@lipsin.noalloc] [@lipsin.allow_alloc \"test fixture\"] f x =\n\
      \  (x, x)\n"
  in
  Alcotest.(check int) "binding-level allow_alloc suppresses" 0
    (List.length findings)

let test_expression_suppression () =
  let findings =
    check
      "let[@lipsin.noalloc] f x =\n\
      \  let k = ((x, x) [@lipsin.allow_alloc \"sanctioned pair\"]) in\n\
      \  fst k\n"
  in
  Alcotest.(check int) "expression-level allow_alloc suppresses" 0
    (List.length findings)

(* Property: whatever allocating construct is seeded and whatever the
   reason string says, a suppressed site never reports. *)
let allocating_bodies =
  [|
    "(x, x)";
    "[ x; x ]";
    "[| x; x |]";
    "Some x";
    "(fun y -> y + x) 1";
    "ref (x + 1)";
    "lazy x";
  |]

let prop_suppressed_never_reports =
  QCheck.Test.make ~name:"allow_alloc-marked sites never report" ~count:40
    QCheck.(pair (int_bound (Array.length allocating_bodies - 1)) small_nat)
    (fun (pick, salt) ->
      let reason = Printf.sprintf "seeded reason %d" salt in
      let body = allocating_bodies.(pick) in
      let text =
        Printf.sprintf
          "let[@lipsin.noalloc] f x =\n\
          \  ignore ((%s) [@lipsin.allow_alloc %S]);\n\
          \  x + 1\n"
          body reason
      in
      let suppressed = check text in
      (* the same body without the attribute must report: the property
         is that the attribute, not the fixture, removes the finding *)
      let text_bare =
        Printf.sprintf
          "let[@lipsin.noalloc] g x =\n\
          \  ignore (%s);\n\
          \  x + 1\n"
          body
      in
      let bare = check text_bare in
      List.length suppressed = 0 && List.length bare > 0)

let () =
  Alcotest.run "alloccheck"
    [
      ( "proofs",
        [
          Alcotest.test_case "clean elimref loops" `Quick test_clean_loops;
          Alcotest.test_case "whitelisted primitives" `Quick
            test_whitelisted_primitives;
        ] );
      ( "violations",
        [
          Alcotest.test_case "escaping closure" `Quick test_escaping_closure;
          Alcotest.test_case "boxed float return" `Quick
            test_boxed_float_return;
          Alcotest.test_case "tuple and record" `Quick test_tuple_and_record;
          Alcotest.test_case "partial application" `Quick
            test_partial_application;
          Alcotest.test_case "heapified ref" `Quick test_heapified_ref;
          Alcotest.test_case "call-graph chain" `Quick test_callgraph_chain;
          Alcotest.test_case "unknown callee" `Quick test_unknown_callee;
          Alcotest.test_case "unannotated ignored" `Quick
            test_unannotated_ignored;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "binding-level" `Quick test_binding_suppression;
          Alcotest.test_case "expression-level" `Quick
            test_expression_suppression;
          QCheck_alcotest.to_alcotest prop_suppressed_never_reports;
        ] );
    ]
