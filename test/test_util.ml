(* Tests for Lipsin_util: Rng, Stats, Zipf. *)

module Rng = Lipsin_util.Rng
module Stats = Lipsin_util.Stats
module Zipf = Lipsin_util.Zipf

let test_rng_deterministic () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1L and b = Rng.create 2L in
  Alcotest.(check bool) "different seeds differ" true (Rng.int64 a <> Rng.int64 b)

let test_rng_copy () =
  let a = Rng.create 7L in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.int64 a) (Rng.int64 b)

let test_rng_split_independent () =
  let a = Rng.create 7L in
  let b = Rng.split a in
  Alcotest.(check bool) "split stream differs" true (Rng.int64 a <> Rng.int64 b)

let test_rng_int_bounds () =
  let rng = Rng.create 3L in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done

let test_rng_int_rejects_bad_bound () =
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int (Rng.create 1L) 0))

let test_rng_int_coverage () =
  (* Every residue of a small bound appears over many draws. *)
  let rng = Rng.create 5L in
  let seen = Array.make 7 false in
  for _ = 1 to 1000 do
    seen.(Rng.int rng 7) <- true
  done;
  Alcotest.(check bool) "all residues hit" true (Array.for_all Fun.id seen)

let test_rng_float_bounds () =
  let rng = Rng.create 9L in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_sample_distinct () =
  let rng = Rng.create 11L in
  for _ = 1 to 50 do
    let xs = Rng.sample rng 10 30 in
    let sorted = List.sort_uniq compare (Array.to_list xs) in
    Alcotest.(check int) "distinct" 10 (List.length sorted);
    List.iter
      (fun v -> Alcotest.(check bool) "in range" true (v >= 0 && v < 30))
      sorted
  done

let test_rng_sample_full_range () =
  let rng = Rng.create 13L in
  let xs = Rng.sample rng 8 8 in
  Alcotest.(check (list int)) "permutation of 0..7" [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    (List.sort compare (Array.to_list xs))

let test_rng_sample_rejects () =
  Alcotest.check_raises "n > bound"
    (Invalid_argument "Rng.sample: need 0 <= n <= bound") (fun () ->
      ignore (Rng.sample (Rng.create 1L) 5 3))

let test_rng_shuffle_permutes () =
  let rng = Rng.create 17L in
  let a = Array.init 20 Fun.id in
  Rng.shuffle rng a;
  Alcotest.(check (list int)) "same multiset" (List.init 20 Fun.id)
    (List.sort compare (Array.to_list a))

let test_stats_mean () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  Alcotest.(check (float 1e-9)) "empty mean" 0.0 (Stats.mean [||])

let test_stats_stddev () =
  Alcotest.(check (float 1e-9)) "stddev" 1.0 (Stats.stddev [| 1.0; 2.0; 3.0 |]);
  Alcotest.(check (float 1e-9)) "single sample" 0.0 (Stats.stddev [| 5.0 |])

let test_stats_percentile () =
  let xs = [| 10.0; 20.0; 30.0; 40.0 |] in
  Alcotest.(check (float 1e-9)) "p0 = min" 10.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p100 = max" 40.0 (Stats.percentile xs 100.0);
  Alcotest.(check (float 1e-9)) "p50 interpolates" 25.0 (Stats.percentile xs 50.0)

let test_stats_percentile_single () =
  (* One sample: every percentile is that sample. *)
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "p%.0f of singleton" p)
        7.5
        (Stats.percentile [| 7.5 |] p))
    [ 0.0; 50.0; 99.0; 100.0 ]

let test_stats_summary_uses_percentile () =
  (* summarize's quantiles are Stats.percentile, not a private copy. *)
  let xs = Array.init 37 (fun i -> float_of_int ((i * 17) mod 31)) in
  let s = Stats.summarize xs in
  Alcotest.(check (float 1e-9)) "p5" (Stats.percentile xs 5.0) s.Stats.p5;
  Alcotest.(check (float 1e-9)) "p50" (Stats.percentile xs 50.0) s.Stats.p50;
  Alcotest.(check (float 1e-9)) "p95" (Stats.percentile xs 95.0) s.Stats.p95

let test_stats_percentile_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty array")
    (fun () -> ignore (Stats.percentile [||] 50.0));
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Stats.percentile: p outside [0,100]") (fun () ->
      ignore (Stats.percentile [| 1.0 |] 101.0))

let test_stats_summary () =
  let s = Stats.summarize [| 4.0; 1.0; 3.0; 2.0 |] in
  Alcotest.(check int) "count" 4 s.Stats.count;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 4.0 s.Stats.max;
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.Stats.mean

let test_stats_accumulator_matches_batch () =
  let xs = Array.init 100 (fun i -> float_of_int (i * i) /. 7.0) in
  let acc = Stats.accumulator () in
  Array.iter (Stats.add acc) xs;
  Alcotest.(check (float 1e-6)) "mean agrees" (Stats.mean xs) (Stats.acc_mean acc);
  Alcotest.(check (float 1e-6)) "stddev agrees" (Stats.stddev xs) (Stats.acc_stddev acc);
  Alcotest.(check int) "count" 100 (Stats.acc_count acc)

let test_zipf_pmf_sums_to_one () =
  let z = Zipf.create ~n:50 ~s:1.0 in
  let total = ref 0.0 in
  for r = 1 to 50 do
    total := !total +. Zipf.pmf z r
  done;
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 !total

let test_zipf_monotone () =
  let z = Zipf.create ~n:20 ~s:1.2 in
  for r = 1 to 19 do
    Alcotest.(check bool) "pmf decreasing" true (Zipf.pmf z r >= Zipf.pmf z (r + 1))
  done

let test_zipf_draw_range () =
  let z = Zipf.create ~n:10 ~s:1.0 in
  let rng = Rng.create 23L in
  for _ = 1 to 1000 do
    let r = Zipf.draw z rng in
    Alcotest.(check bool) "rank in [1,10]" true (r >= 1 && r <= 10)
  done

let test_zipf_rank_one_most_common () =
  let z = Zipf.create ~n:100 ~s:1.0 in
  let rng = Rng.create 29L in
  let counts = Array.make 101 0 in
  for _ = 1 to 5000 do
    let r = Zipf.draw z rng in
    counts.(r) <- counts.(r) + 1
  done;
  let max_rank = ref 1 in
  for r = 2 to 100 do
    if counts.(r) > counts.(!max_rank) then max_rank := r
  done;
  Alcotest.(check int) "rank 1 drawn most" 1 !max_rank

let test_zipf_rejects () =
  Alcotest.check_raises "n=0" (Invalid_argument "Zipf.create: n must be positive")
    (fun () -> ignore (Zipf.create ~n:0 ~s:1.0))

let test_zipf_subscriber_count_bounds () =
  let z = Zipf.create ~n:1000 ~s:1.0 in
  let rng = Rng.create 31L in
  for _ = 1 to 500 do
    let c = Zipf.subscriber_count z ~rng ~max_subscribers:64 in
    Alcotest.(check bool) "1..64" true (c >= 1 && c <= 64)
  done

(* Property: Rng.int is within bounds for arbitrary positive bounds. *)
let prop_rng_int_bounds =
  QCheck.Test.make ~name:"rng int stays in bounds" ~count:200
    QCheck.(pair small_nat (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Rng.of_int seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_sample_distinct =
  QCheck.Test.make ~name:"sample yields distinct values" ~count:200
    QCheck.(pair small_nat (int_range 1 200))
    (fun (seed, bound) ->
      let rng = Rng.of_int seed in
      let n = min bound ((seed mod bound) + 1) in
      let xs = Rng.sample rng n bound in
      List.length (List.sort_uniq compare (Array.to_list xs)) = n)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile is monotone in p" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let a = Array.of_list xs in
      Stats.percentile a 25.0 <= Stats.percentile a 75.0)

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int bad bound" `Quick test_rng_int_rejects_bad_bound;
          Alcotest.test_case "int coverage" `Quick test_rng_int_coverage;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "sample distinct" `Quick test_rng_sample_distinct;
          Alcotest.test_case "sample full range" `Quick test_rng_sample_full_range;
          Alcotest.test_case "sample rejects" `Quick test_rng_sample_rejects;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          QCheck_alcotest.to_alcotest prop_rng_int_bounds;
          QCheck_alcotest.to_alcotest prop_sample_distinct;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "percentile single sample" `Quick
            test_stats_percentile_single;
          Alcotest.test_case "summarize uses percentile" `Quick
            test_stats_summary_uses_percentile;
          Alcotest.test_case "percentile errors" `Quick test_stats_percentile_errors;
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "accumulator" `Quick test_stats_accumulator_matches_batch;
          QCheck_alcotest.to_alcotest prop_percentile_monotone;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "pmf sums to one" `Quick test_zipf_pmf_sums_to_one;
          Alcotest.test_case "pmf monotone" `Quick test_zipf_monotone;
          Alcotest.test_case "draw range" `Quick test_zipf_draw_range;
          Alcotest.test_case "rank 1 most common" `Quick test_zipf_rank_one_most_common;
          Alcotest.test_case "rejects bad n" `Quick test_zipf_rejects;
          Alcotest.test_case "subscriber count bounds" `Quick
            test_zipf_subscriber_count_bounds;
        ] );
    ]
