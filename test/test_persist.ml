(* Tests for Lipsin_packet.Fragment and Lipsin_core.Persist. *)

module Fragment = Lipsin_packet.Fragment
module Persist = Lipsin_core.Persist
module Assignment = Lipsin_core.Assignment
module Lit = Lipsin_bloom.Lit
module Bitvec = Lipsin_bitvec.Bitvec
module Graph = Lipsin_topology.Graph
module Generator = Lipsin_topology.Generator
module Edge_list = Lipsin_topology.Edge_list
module Rng = Lipsin_util.Rng

let test_max_chunk () =
  (* MTU 1500, m=248: 1500 - 36 header - 8 frag = 1456. *)
  Alcotest.(check int) "ethernet MTU chunk" 1456 (Fragment.max_chunk ~mtu:1500 ~m:248);
  Alcotest.check_raises "tiny mtu" (Invalid_argument "Fragment.max_chunk: MTU too small")
    (fun () -> ignore (Fragment.max_chunk ~mtu:44 ~m:248))

let reassemble_all fragments =
  let r = Fragment.reassembler () in
  List.fold_left
    (fun acc f ->
      match Fragment.offer r f with
      | Ok (Some message) -> Some message
      | Ok None -> acc
      | Error e -> Alcotest.fail e)
    None fragments

let test_split_reassemble_in_order () =
  let message = String.init 5000 (fun i -> Char.chr (i mod 256)) in
  let fragments = Fragment.split ~mtu:1500 ~m:248 ~message_id:7l message in
  Alcotest.(check int) "ceil(5000/1456) fragments" 4 (List.length fragments);
  match reassemble_all fragments with
  | Some out -> Alcotest.(check bool) "roundtrip" true (String.equal out message)
  | None -> Alcotest.fail "must complete"

let test_reassemble_out_of_order_and_duplicates () =
  let message = String.concat "-" (List.init 300 string_of_int) in
  let fragments = Fragment.split ~mtu:120 ~m:248 ~message_id:9l message in
  Alcotest.(check bool) "several fragments" true (List.length fragments > 3);
  let shuffled = Array.of_list (fragments @ [ List.hd fragments ]) in
  Rng.shuffle (Rng.of_int 3) shuffled;
  match reassemble_all (Array.to_list shuffled) with
  | Some out -> Alcotest.(check bool) "roundtrip" true (String.equal out message)
  | None -> Alcotest.fail "must complete despite reordering/duplicates"

let test_empty_message_single_fragment () =
  let fragments = Fragment.split ~mtu:1500 ~m:248 ~message_id:1l "" in
  Alcotest.(check int) "one empty fragment" 1 (List.length fragments);
  match reassemble_all fragments with
  | Some out -> Alcotest.(check string) "empty" "" out
  | None -> Alcotest.fail "must complete"

let test_interleaved_messages () =
  let m_a = String.make 3000 'a' and m_b = String.make 2500 'b' in
  let fa = Fragment.split ~mtu:1000 ~m:248 ~message_id:100l m_a in
  let fb = Fragment.split ~mtu:1000 ~m:248 ~message_id:200l m_b in
  let r = Fragment.reassembler () in
  let completed = ref [] in
  let feed f =
    match Fragment.offer r f with
    | Ok (Some m) -> completed := m :: !completed
    | Ok None -> ()
    | Error e -> Alcotest.fail e
  in
  (* Interleave the two streams, feeding each fragment exactly once. *)
  let rec interleave xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> rest
    | x :: xs, y :: ys -> x :: y :: interleave xs ys
  in
  List.iter feed (interleave fa fb);
  Alcotest.(check int) "both completed" 2 (List.length !completed);
  Alcotest.(check int) "reassembler drained" 0 (Fragment.pending r)

let test_offer_rejects_conflicts () =
  let fragments = Fragment.split ~mtu:100 ~m:248 ~message_id:5l (String.make 300 'x') in
  let r = Fragment.reassembler () in
  (match Fragment.offer r (List.hd fragments) with
  | Ok None -> ()
  | _ -> Alcotest.fail "first fragment incomplete");
  (* Forge a conflicting duplicate: same id/index, different chunk. *)
  let forged =
    let original = List.hd fragments in
    String.sub original 0 Fragment.header_bytes ^ String.make 10 '!'
  in
  match Fragment.offer r forged with
  | Error msg -> Alcotest.(check string) "conflict" "conflicting duplicate fragment" msg
  | Ok _ -> Alcotest.fail "conflicting chunk must be rejected"

let test_parse_rejects_garbage () =
  (match Fragment.parse "short" with
  | Error msg -> Alcotest.(check string) "short" "fragment too short" msg
  | Ok _ -> Alcotest.fail "short frame");
  (* index >= count *)
  let bad = "\x00\x00\x00\x01\x00\x05\x00\x02payload" in
  match Fragment.parse bad with
  | Error msg -> Alcotest.(check string) "range" "fragment index out of range" msg
  | Ok _ -> Alcotest.fail "bad index"

let prop_fragment_roundtrip =
  QCheck.Test.make ~name:"split/reassemble roundtrip" ~count:100
    QCheck.(pair (string_of_size (QCheck.Gen.int_range 0 5000)) (int_range 60 400))
    (fun (message, mtu) ->
      let fragments = Fragment.split ~mtu ~m:120 ~message_id:3l message in
      match reassemble_all fragments with
      | Some out -> String.equal out message
      | None -> false)

(* ---- Persist ---- *)

let sample () =
  let g =
    Generator.pref_attach ~rng:(Rng.of_int 269) ~nodes:20 ~edges:32 ~max_degree:8 ()
  in
  (g, Assignment.make Lit.paper_variable (Rng.of_int 271) g)

let test_persist_roundtrip () =
  let g, asg = sample () in
  match Persist.of_string g (Persist.to_string asg) with
  | Error e -> Alcotest.fail e
  | Ok back ->
    Graph.iter_links g (fun l ->
        for table = 0 to 7 do
          Alcotest.(check bool) "identical tags" true
            (Bitvec.equal (Assignment.tag asg l ~table)
               (Assignment.tag back l ~table))
        done)

let test_persist_file_roundtrip () =
  let g, asg = sample () in
  let path = Filename.temp_file "lipsin" ".assignment" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Persist.save asg path;
      match Persist.load g path with
      | Ok back ->
        Alcotest.(check int64) "first nonce survives"
          (Assignment.nonces asg).(0)
          (Assignment.nonces back).(0)
      | Error e -> Alcotest.fail e)

let test_persist_with_edge_list_roundtrip () =
  (* Full deployment persistence: graph + assignment both serialised. *)
  let g, asg = sample () in
  let g2 = Edge_list.of_string (Edge_list.to_string g) in
  match Persist.of_string g2 (Persist.to_string asg) with
  | Ok back ->
    Alcotest.(check int) "bound to reloaded graph" (Graph.link_count g)
      (Assignment.link_count back)
  | Error e -> Alcotest.fail e

let test_persist_rejects () =
  let g, asg = sample () in
  (match Persist.of_string g "garbage" with
  | Error msg -> Alcotest.(check string) "garbage" "truncated assignment file" msg
  | Ok _ -> Alcotest.fail "garbage accepted");
  (match Persist.of_string g "nope v9\nm 248\nk 5\n" with
  | Error msg -> Alcotest.(check string) "magic" "bad magic line" msg
  | Ok _ -> Alcotest.fail "bad magic accepted");
  let small = Graph.create ~nodes:2 in
  Graph.add_edge small 0 1;
  match Persist.of_string small (Persist.to_string asg) with
  | Error msg ->
    Alcotest.(check string) "mismatch" "nonce count does not match the graph's links" msg
  | Ok _ -> Alcotest.fail "graph mismatch accepted"

let test_persist_rejects_malformed_payload () =
  (* Corrupt a valid serialisation one line at a time and check each
     error path: nonce count (truncated/padded), nonce syntax, header
     parameter syntax, and Lit.validate rejection of parsed params. *)
  let g, asg = sample () in
  let lines =
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' (Persist.to_string asg))
  in
  let n = List.length lines in
  let rejoin ls = String.concat "\n" ls ^ "\n" in
  let replace i v = List.mapi (fun j s -> if j = i then v else s) lines in
  let reject name expected text =
    match Persist.of_string g text with
    | Error msg -> Alcotest.(check string) name expected msg
    | Ok _ -> Alcotest.fail (name ^ " accepted")
  in
  reject "truncated nonce list" "nonce count does not match the graph's links"
    (rejoin (List.filteri (fun i _ -> i < n - 1) lines));
  reject "extra nonce line" "nonce count does not match the graph's links"
    (rejoin (lines @ [ List.nth lines (n - 1) ]));
  (* line 3 is the first nonce; in-place corruption keeps the count *)
  reject "short nonce line" "malformed nonce line"
    (rejoin (replace 3 "0123456789abcde"));
  reject "non-hex nonce line" "malformed nonce line"
    (rejoin (replace 3 "zzzzzzzzzzzzzzzz"));
  reject "unparsable m" "malformed parameter lines" (rejoin (replace 1 "m x"));
  reject "unparsable k entry" "malformed parameter lines"
    (rejoin (replace 2 "k 5,oops"));
  reject "headerless m" "malformed parameter lines" (rejoin (replace 1 "248"));
  match Persist.of_string g (rejoin (replace 1 "m 0")) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "m 0 must fail Lit.validate"

let () =
  Alcotest.run "persist-fragment"
    [
      ( "fragment",
        [
          Alcotest.test_case "max chunk" `Quick test_max_chunk;
          Alcotest.test_case "in order" `Quick test_split_reassemble_in_order;
          Alcotest.test_case "out of order + dups" `Quick
            test_reassemble_out_of_order_and_duplicates;
          Alcotest.test_case "empty message" `Quick test_empty_message_single_fragment;
          Alcotest.test_case "interleaved messages" `Quick test_interleaved_messages;
          Alcotest.test_case "rejects conflicts" `Quick test_offer_rejects_conflicts;
          Alcotest.test_case "parse rejects" `Quick test_parse_rejects_garbage;
          QCheck_alcotest.to_alcotest prop_fragment_roundtrip;
        ] );
      ( "persist",
        [
          Alcotest.test_case "roundtrip" `Quick test_persist_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_persist_file_roundtrip;
          Alcotest.test_case "with edge list" `Quick test_persist_with_edge_list_roundtrip;
          Alcotest.test_case "rejects" `Quick test_persist_rejects;
          Alcotest.test_case "rejects malformed payload" `Quick
            test_persist_rejects_malformed_payload;
        ] );
    ]
