(* Tests for Lipsin_obs: per-domain counters, histograms, the trace
   ring, exporters, and the PR 4 differential properties — trace replay
   reconstructs Run.deliver's delivery set, and both forwarding engines
   produce identical telemetry deltas for the same packet history. *)

module Obs = Lipsin_obs.Obs
module Lit = Lipsin_bloom.Lit
module Zfilter = Lipsin_bloom.Zfilter
module Bitvec = Lipsin_bitvec.Bitvec
module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module Generator = Lipsin_topology.Generator
module Assignment = Lipsin_core.Assignment
module Candidate = Lipsin_core.Candidate
module Node_engine = Lipsin_forwarding.Node_engine
module Fastpath = Lipsin_forwarding.Fastpath
module Net = Lipsin_sim.Net
module Run = Lipsin_sim.Run
module Rng = Lipsin_util.Rng

let with_memory f =
  Obs.Sink.set Obs.Sink.Memory;
  Obs.Trace.set_recording true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.set_recording true;
      Obs.Sink.set Obs.Sink.Noop)
    f

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ---- counters ------------------------------------------------------- *)

let test_counter_aggregates_domains () =
  with_memory (fun () ->
      let c = Obs.Counter.make "test_obs_domains_total" in
      let before = Obs.Counter.value c in
      Obs.Counter.add c 5;
      let workers =
        Array.init 3 (fun _ ->
            Domain.spawn (fun () ->
                for _ = 1 to 1000 do
                  Obs.Counter.incr c
                done))
      in
      Array.iter Domain.join workers;
      Alcotest.(check int) "summed across domains" (before + 3005)
        (Obs.Counter.value c))

let test_noop_sink_records_nothing () =
  Obs.Sink.set Obs.Sink.Noop;
  let c = Obs.Counter.make "test_obs_noop_total" in
  let h = Obs.Histogram.make "test_obs_noop_hist" in
  let v0 = Obs.Counter.value c in
  let n0 = (Obs.Histogram.summary h).Obs.Histogram.count in
  Obs.Counter.incr c;
  Obs.Counter.add c 7;
  Obs.Histogram.observe h 3.0;
  Obs.Histogram.observe_int h 5;
  Alcotest.(check int) "counter unchanged" v0 (Obs.Counter.value c);
  Alcotest.(check int) "histogram unchanged" n0
    (Obs.Histogram.summary h).Obs.Histogram.count

let test_registry_idempotent () =
  with_memory (fun () ->
      let a = Obs.Counter.make ~labels:[ ("x", "1") ] "test_obs_idem_total" in
      let b = Obs.Counter.make ~labels:[ ("x", "1") ] "test_obs_idem_total" in
      let o = Obs.Counter.make ~labels:[ ("x", "2") ] "test_obs_idem_total" in
      let va = Obs.Counter.value a and vo = Obs.Counter.value o in
      Obs.Counter.add a 4;
      Alcotest.(check int) "same (name,labels) is one counter" (va + 4)
        (Obs.Counter.value b);
      Alcotest.(check int) "distinct labels stay independent" vo
        (Obs.Counter.value o))

(* ---- histograms ----------------------------------------------------- *)

let test_histogram_bucket_bounds () =
  let check_v v =
    let i = Obs.Histogram.bucket_of v in
    Alcotest.(check bool)
      (Printf.sprintf "v=%g within le_bound %d" v i)
      true
      (v <= Obs.Histogram.le_bound i);
    if i > 0 then
      Alcotest.(check bool)
        (Printf.sprintf "v=%g above le_bound %d" v (i - 1))
        true
        (v > Obs.Histogram.le_bound (i - 1))
  in
  List.iter check_v
    [ 1e-12; 0.001; 0.5; 0.75; 1.0; 1.5; 2.0; 3.0; 1023.0; 1024.0; 1025.0;
      4096.5; 1e9 ];
  Alcotest.(check int) "overflow clamps to the top bucket" 63
    (Obs.Histogram.bucket_of 1e12);
  Alcotest.(check int) "non-positive values land in bucket 0" 0
    (Obs.Histogram.bucket_of (-3.0))

let test_record_int_matches_record () =
  with_memory (fun () ->
      let hf = Obs.Histogram.make "test_obs_float_hist" in
      let hi = Obs.Histogram.make "test_obs_int_hist" in
      for n = 0 to 2000 do
        Obs.Histogram.observe hf (float_of_int n);
        Obs.Histogram.observe_int hi n
      done;
      let sf = Obs.Histogram.summary hf and si = Obs.Histogram.summary hi in
      Alcotest.(check int) "count" sf.Obs.Histogram.count si.Obs.Histogram.count;
      Alcotest.(check (float 1e-9)) "sum" sf.Obs.Histogram.sum
        si.Obs.Histogram.sum;
      Alcotest.(check (float 1e-9)) "p50" sf.Obs.Histogram.p50
        si.Obs.Histogram.p50;
      Alcotest.(check (float 1e-9)) "p99" sf.Obs.Histogram.p99
        si.Obs.Histogram.p99;
      Alcotest.(check (float 1e-9)) "max" sf.Obs.Histogram.max
        si.Obs.Histogram.max)

let test_histogram_summary () =
  with_memory (fun () ->
      let h = Obs.Histogram.make "test_obs_summary_hist" in
      for n = 1 to 1000 do
        Obs.Histogram.observe h (float_of_int n)
      done;
      let s = Obs.Histogram.summary h in
      Alcotest.(check int) "count" 1000 s.Obs.Histogram.count;
      Alcotest.(check (float 1e-6)) "sum" 500500.0 s.Obs.Histogram.sum;
      Alcotest.(check (float 1e-6)) "max" 1000.0 s.Obs.Histogram.max;
      Alcotest.(check bool) "quantiles ordered" true
        (s.Obs.Histogram.p50 <= s.Obs.Histogram.p95
        && s.Obs.Histogram.p95 <= s.Obs.Histogram.p99
        && s.Obs.Histogram.p99 <= s.Obs.Histogram.max);
      (* rank 500 of 1..1000 falls in the (256, 512] bucket *)
      Alcotest.(check bool) "p50 interpolated inside its bucket" true
        (s.Obs.Histogram.p50 > 256.0 && s.Obs.Histogram.p50 <= 512.0);
      Alcotest.(check bool) "p999 between p99 and max" true
        (s.Obs.Histogram.p99 <= s.Obs.Histogram.p999
        && s.Obs.Histogram.p999 <= s.Obs.Histogram.max))

(* ---- trace ring ----------------------------------------------------- *)

let test_trace_ring_overflow () =
  with_memory (fun () ->
      let dropped0 = Obs.Trace.dropped () in
      Obs.Trace.set_capacity 8;
      Fun.protect
        ~finally:(fun () -> Obs.Trace.set_capacity 16384)
        (fun () ->
          (* a fresh domain gets a fresh ring at the shrunken capacity *)
          let d =
            Domain.spawn (fun () ->
                let r = Obs.Trace.local () in
                for i = 0 to 19 do
                  Obs.Trace.record r ~packet:424_242 ~node:i ~in_link:(-1)
                    ~kind:Obs.Trace.Hop ~out_links:[||] ~false_positive:false
                    ~loop_suspected:false ~deliver_local:false ~ttl_expired:0
                done)
          in
          Domain.join d);
      let evs = Obs.Trace.packet_events 424_242 in
      Alcotest.(check int) "ring keeps exactly its capacity" 8
        (List.length evs);
      Alcotest.(check int) "overflow is accounted" 12
        (Obs.Trace.dropped () - dropped0);
      Alcotest.(check (list int)) "newest events survive, in order"
        [ 12; 13; 14; 15; 16; 17; 18; 19 ]
        (List.map (fun e -> e.Obs.Trace.ev_node) evs))

(* ---- exporters ------------------------------------------------------ *)

let test_exporters () =
  with_memory (fun () ->
      let c =
        Obs.Counter.make ~help:"Export test counter"
          ~labels:[ ("kind", "x") ]
          "test_obs_export_total"
      in
      let h = Obs.Histogram.make ~help:"Export test hist" "test_obs_export_hist" in
      Obs.Counter.add c 3;
      Obs.Histogram.observe h 2.5;
      let prom = Obs.Export.prometheus () in
      List.iter
        (fun needle ->
          Alcotest.(check bool) ("prometheus has " ^ needle) true
            (contains prom needle))
        [
          "# TYPE test_obs_export_total counter";
          "# HELP test_obs_export_total Export test counter";
          "test_obs_export_total{kind=\"x\"}";
          "# TYPE test_obs_export_hist histogram";
          "test_obs_export_hist_bucket{le=";
          "le=\"+Inf\"";
          "test_obs_export_hist_sum";
          "test_obs_export_hist_count";
        ];
      let js = Obs.Export.json () in
      List.iter
        (fun needle ->
          Alcotest.(check bool) ("json has " ^ needle) true
            (contains js needle))
        [ "test_obs_export_total"; "test_obs_export_hist"; "\"p999\"" ])

(* Exposition-spec escaping: label values escape backslash, quote and
   newline; HELP text escapes backslash and newline but not quotes. *)
let test_export_escaping () =
  Alcotest.(check string) "label escapes" "a\\\\b\\\"c\\nd"
    (Obs.Export.escape_label "a\\b\"c\nd");
  Alcotest.(check string) "help escapes" "a\\\\b\"c\\nd"
    (Obs.Export.escape_help "a\\b\"c\nd");
  with_memory (fun () ->
      let c =
        Obs.Counter.make ~help:"line one\nline \\two"
          ~labels:[ ("path", "C:\\tmp\n\"x\"") ]
          "test_obs_escape_total"
      in
      Obs.Counter.add c 1;
      let prom = Obs.Export.prometheus () in
      List.iter
        (fun needle ->
          Alcotest.(check bool) ("prometheus has " ^ needle) true
            (contains prom needle))
        [
          "# HELP test_obs_escape_total line one\\nline \\\\two";
          "{path=\"C:\\\\tmp\\n\\\"x\\\"\"}";
        ];
      (* No raw newline may survive inside any exposition line. *)
      List.iter
        (fun line ->
          if contains line "test_obs_escape" then
            Alcotest.(check bool) "single physical line" false
              (String.contains line '\r'))
        (String.split_on_char '\n' prom))

(* Families render one TYPE line each, before their samples, in
   deterministic order across repeated renders. *)
let test_export_family_discipline () =
  with_memory (fun () ->
      List.iter
        (fun l ->
          Obs.Counter.add
            (Obs.Counter.make ~labels:[ ("engine", l) ] "test_obs_family_total")
            1)
        [ "fast"; "reference"; "bitsliced" ];
      let prom = Obs.Export.prometheus () in
      let type_lines =
        List.filter
          (fun l -> contains l "# TYPE test_obs_family_total")
          (String.split_on_char '\n' prom)
      in
      Alcotest.(check int) "one TYPE line per family" 1
        (List.length type_lines);
      Alcotest.(check string) "render is deterministic" prom
        (Obs.Export.prometheus ()))

(* ---- property: trace replay reconstructs the delivery set ----------- *)

let sorted_reached o =
  let acc = ref [] in
  Array.iteri (fun i r -> if r then acc := i :: !acc) o.Run.reached;
  List.sort Int.compare !acc

let replay_case (seed, ttl_mode, fast) =
  with_memory (fun () ->
      Obs.Trace.clear ();
      let rng = Rng.of_int (seed + 1) in
      let nodes = 16 + Rng.int rng 20 in
      let g =
        Generator.pref_attach ~rng:(Rng.split rng) ~nodes ~edges:(nodes * 2)
          ~max_degree:8 ()
      in
      let asg = Assignment.make Lit.default (Rng.split rng) g in
      let net = Net.make asg in
      let src = Rng.int rng nodes in
      let subscribers =
        List.filter
          (fun s -> s <> src)
          (List.init (1 + Rng.int rng 5) (fun _ -> Rng.int rng nodes))
      in
      let tree = Spt.delivery_tree g ~root:src ~subscribers in
      let zfilter =
        if tree = [] then Zfilter.create ~m:Lit.default.Lit.m
        else (Candidate.build_one asg ~tree ~table:0).Candidate.zfilter
      in
      let mode = if ttl_mode then Run.Ttl 10 else Run.Expand_once in
      let engine = if fast then `Fast else `Reference in
      let dropped0 = Obs.Trace.dropped () in
      let o = Run.deliver ~mode ~engine net ~src ~table:0 ~zfilter ~tree in
      if Obs.Trace.dropped () > dropped0 then true (* ring overflowed: vacuous *)
      else begin
        let evs = Obs.Trace.packet_events o.Run.packet_id in
        let replayed =
          Obs.Trace.delivery_set
            ~dst_of:(fun i -> (Graph.link g i).Graph.dst)
            evs
        in
        replayed = sorted_reached o
      end)

let replay_test =
  QCheck.Test.make ~count:40
    ~name:"trace replay reconstructs Run.deliver's delivery set"
    QCheck.(triple (int_bound 10_000) bool bool)
    replay_case

(* ---- property: span trees replay to exactly the delivery set -------- *)

(* The structured twin of [replay_case]: reconstruct the publication's
   span tree and let [Run.verify_trace] cross-check it against the
   delivery set, across all three engines and both propagation modes. *)
let span_case (seed, ttl_mode, engine_pick) =
  with_memory (fun () ->
      Obs.Trace.clear ();
      Obs.Trace.set_sampling 1;
      let rng = Rng.of_int (seed + 3) in
      let nodes = 16 + Rng.int rng 20 in
      let g =
        Generator.pref_attach ~rng:(Rng.split rng) ~nodes ~edges:(nodes * 2)
          ~max_degree:8 ()
      in
      let asg = Assignment.make Lit.default (Rng.split rng) g in
      let net = Net.make asg in
      let src = Rng.int rng nodes in
      let subscribers =
        List.filter
          (fun s -> s <> src)
          (List.init (1 + Rng.int rng 5) (fun _ -> Rng.int rng nodes))
      in
      let tree = Spt.delivery_tree g ~root:src ~subscribers in
      let zfilter =
        if tree = [] then Zfilter.create ~m:Lit.default.Lit.m
        else (Candidate.build_one asg ~tree ~table:0).Candidate.zfilter
      in
      let mode = if ttl_mode then Run.Ttl 10 else Run.Expand_once in
      let engine =
        match engine_pick mod 3 with
        | 0 -> `Reference
        | 1 -> `Fast
        | _ -> `Bitsliced
      in
      let dropped0 = Obs.Trace.dropped () in
      let o = Run.deliver ~mode ~engine net ~src ~table:0 ~zfilter ~tree in
      if Obs.Trace.dropped () > dropped0 then true (* ring overflowed: vacuous *)
      else
        match Run.verify_trace net o with
        | None -> QCheck.Test.fail_report "publication was not sampled"
        | Some v ->
          if not v.Obs.Span.vd_complete then
            QCheck.Test.fail_report "span forest incomplete (orphans)";
          if v.Obs.Span.vd_delivered <> sorted_reached o then
            QCheck.Test.fail_reportf
              "span replay diverges from the delivery set: %s"
              (Obs.Span.verdict_to_string v);
          (* Loop errors may only appear when the run really vetoed. *)
          if not v.Obs.Span.vd_ok && o.Run.loop_drops = 0 then
            QCheck.Test.fail_reportf "unexpected span errors: %s"
              (Obs.Span.verdict_to_string v);
          true)

let span_test =
  QCheck.Test.make ~count:60
    ~name:"span trees replay to exactly the delivery set (all engines)"
    QCheck.(triple (int_bound 10_000) bool (int_bound 2))
    span_case

(* A span tree's structure is consistent: every event is reachable from
   a root, and depth/size agree with the event count. *)
let test_span_shape () =
  with_memory (fun () ->
      Obs.Trace.clear ();
      let rng = Rng.of_int 77 in
      let g =
        Generator.pref_attach ~rng:(Rng.split rng) ~nodes:24 ~edges:48
          ~max_degree:8 ()
      in
      let asg = Assignment.make Lit.default (Rng.split rng) g in
      let net = Net.make asg in
      let subscribers = [ 3; 7; 11; 13 ] in
      let tree = Spt.delivery_tree g ~root:0 ~subscribers in
      let zfilter = (Candidate.build_one asg ~tree ~table:0).Candidate.zfilter in
      let o = Run.deliver ~engine:`Fast net ~src:0 ~table:0 ~zfilter ~tree in
      let t = Obs.Span.of_packet o.Run.packet_id in
      Alcotest.(check int) "packet id" o.Run.packet_id t.Obs.Span.tr_packet;
      let total =
        List.fold_left (fun acc r -> acc + Obs.Span.size r) 0 t.Obs.Span.tr_roots
      in
      Alcotest.(check int) "every event reachable from a root"
        (List.length t.Obs.Span.tr_events)
        total;
      List.iter
        (fun r ->
          Alcotest.(check bool) "depth within size" true
            (Obs.Span.depth r <= Obs.Span.size r))
        t.Obs.Span.tr_roots)

(* ---- property: both engines produce identical telemetry deltas ------ *)

let snapshot engine_label =
  let c name labels = Obs.Counter.value (Obs.Counter.make ~labels name) in
  let e = [ ("engine", engine_label) ] in
  let drops reason =
    c "lipsin_drops_total" [ ("engine", engine_label); ("reason", reason) ]
  in
  let decisions =
    if String.equal engine_label "fast" then
      c "lipsin_fastpath_decisions_total" []
    else c "lipsin_node_engine_decisions_total" []
  in
  let h =
    Obs.Histogram.summary (Obs.Histogram.make ~labels:e "lipsin_admitted_links")
  in
  ( [
      decisions;
      drops "fill";
      drops "loop";
      drops "bad-table";
      c "lipsin_loop_cache_hits_total" e;
      c "lipsin_loop_suspected_total" e;
      c "lipsin_block_vetoes_total" e;
      c "lipsin_local_deliveries_total" e;
      c "lipsin_service_matches_total" e;
      h.Obs.Histogram.count;
    ],
    h.Obs.Histogram.sum )

let parity_case seed =
  with_memory (fun () ->
      let rng = Rng.of_int (seed + 17) in
      let nodes = 12 + Rng.int rng 12 in
      let g =
        Generator.pref_attach ~rng:(Rng.split rng) ~nodes ~edges:(nodes * 2)
          ~max_degree:8 ()
      in
      let asg = Assignment.make Lit.default (Rng.split rng) g in
      let node = ref 0 in
      for v = 1 to nodes - 1 do
        if Graph.out_degree g v > Graph.out_degree g !node then node := v
      done;
      let node = !node in
      let eng = Node_engine.create asg node in
      let fast = Fastpath.compile eng in
      let d = Lit.default.Lit.d and m = Lit.default.Lit.m in
      let in_links =
        Array.of_list
          (List.filter
             (fun l -> l.Graph.dst = node)
             (Array.to_list (Graph.links g)))
      in
      let pool =
        Array.init 8 (fun i ->
            if i = 0 then begin
              (* all-ones filter: matches everything, trips the fill limit *)
              let b = Bitvec.create m in
              Bitvec.set_all b;
              Zfilter.of_bitvec b
            end
            else if i < 5 then begin
              (* a real candidate for a tree rooted at this node *)
              let subscribers =
                List.filter
                  (fun s -> s <> node)
                  (List.init (1 + Rng.int rng 4) (fun _ -> Rng.int rng nodes))
              in
              let tree = Spt.delivery_tree g ~root:node ~subscribers in
              if tree = [] then Zfilter.create ~m
              else
                (Candidate.build_one asg ~tree ~table:(Rng.int rng d))
                  .Candidate.zfilter
            end
            else begin
              (* dense random noise: false positives and loop suspicion *)
              let b = Bitvec.create m in
              for _ = 1 to m / 3 do
                Bitvec.set b (Rng.int rng m)
              done;
              Zfilter.of_bitvec b
            end)
      in
      let before_f = snapshot "fast" and before_r = snapshot "reference" in
      let prev = ref None in
      for _ = 1 to 60 do
        let op =
          match !prev with
          | Some op when Rng.int rng 4 = 0 -> op (* replay: hits the loop cache *)
          | _ ->
            let z = pool.(Rng.int rng (Array.length pool)) in
            let table = if Rng.int rng 10 = 0 then d + 1 else Rng.int rng d in
            let in_link =
              if Array.length in_links = 0 || Rng.bool rng then None
              else Some in_links.(Rng.int rng (Array.length in_links))
            in
            (table, z, in_link)
        in
        prev := Some op;
        let table, z, in_link = op in
        ignore (Node_engine.forward eng ~table ~zfilter:z ~in_link);
        let in_link_index =
          match in_link with None -> -1 | Some l -> l.Graph.index
        in
        ignore (Fastpath.decide fast ~table ~zfilter:z ~in_link_index);
        if Rng.int rng 3 = 0 then begin
          Node_engine.tick eng;
          Fastpath.tick fast
        end
      done;
      let after_f = snapshot "fast" and after_r = snapshot "reference" in
      let delta (b, sb) (a, sa) = (List.map2 (fun x y -> y - x) b a, sa -. sb) in
      delta before_f after_f = delta before_r after_r)

let parity_test =
  QCheck.Test.make ~count:40
    ~name:"fastpath and node engine produce identical counter deltas"
    QCheck.(int_bound 10_000)
    parity_case

let () =
  Alcotest.run "obs"
    [
      ( "counters",
        [
          Alcotest.test_case "aggregates across domains" `Quick
            test_counter_aggregates_domains;
          Alcotest.test_case "noop sink records nothing" `Quick
            test_noop_sink_records_nothing;
          Alcotest.test_case "registration idempotent" `Quick
            test_registry_idempotent;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "bucket bounds" `Quick test_histogram_bucket_bounds;
          Alcotest.test_case "record_int matches record" `Quick
            test_record_int_matches_record;
          Alcotest.test_case "summary quantiles" `Quick test_histogram_summary;
        ] );
      ( "trace",
        [ Alcotest.test_case "ring overflow" `Quick test_trace_ring_overflow ] );
      ( "export",
        [
          Alcotest.test_case "prometheus and json" `Quick test_exporters;
          Alcotest.test_case "exposition escaping" `Quick test_export_escaping;
          Alcotest.test_case "family TYPE discipline" `Quick
            test_export_family_discipline;
        ] );
      ( "spans",
        [ Alcotest.test_case "tree shape" `Quick test_span_shape ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest replay_test;
          QCheck_alcotest.to_alcotest span_test;
          QCheck_alcotest.to_alcotest parity_test;
        ] );
    ]
