(* Partitioned (stitched) zFilters: the cross-engine exactly-once
   harness.  Differential qcheck over randomly split trees (all three
   engines must agree bit for bit, Obs counters included), Netcheck
   acceptance of every compiler-produced partition, rejection of
   injected cross-stage loops and duplicate stitch deliveries, filter
   and blob mutation properties, Persist round-trips with error paths,
   and the fill-limit regression partitioning exists to fix. *)

module Bitvec = Lipsin_bitvec.Bitvec
module Lit = Lipsin_bloom.Lit
module Zfilter = Lipsin_bloom.Zfilter
module Partition = Lipsin_bloom.Partition
module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module Assignment = Lipsin_core.Assignment
module Adaptive = Lipsin_core.Adaptive
module Stagecut = Lipsin_core.Stagecut
module Persist = Lipsin_core.Persist
module Node_engine = Lipsin_forwarding.Node_engine
module Bitsliced = Lipsin_forwarding.Bitsliced
module Stitched = Lipsin_sim.Stitched
module Netcheck = Lipsin_analysis.Netcheck
module Audit = Lipsin_analysis.Audit
module Scenario = Lipsin_workload.Scenario
module Obs = Lipsin_obs.Obs
module Rng = Lipsin_util.Rng

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

(* Two-tier topology (router core + access hosts) with enough
   subscribers that one zFilter cannot carry the tree. *)
let fixture seed ~hosts =
  let g, host_nodes =
    Scenario.two_tier ~seed ~core:30 ~core_edges:60 ~max_degree:8 ~hosts ()
  in
  let adaptive = Adaptive.make ~d:4 ~k:5 (Rng.of_int (seed + 17)) g in
  (g, host_nodes, adaptive)

(* Keep each host with probability keep/100; never empty. *)
let pick_subset rng nodes ~keep =
  match List.filter (fun _ -> Rng.int rng 100 < keep) nodes with
  | [] -> [ List.hd nodes ]
  | l -> l

let plan_exn ?id adaptive ~seed ~subscribers =
  match
    Stagecut.plan ?id adaptive ~rng:(Rng.of_int (seed + 23)) ~root:0 ~subscribers
  with
  | Ok (p, d) -> (p, d)
  | Error e -> Alcotest.failf "Stagecut.plan: %s" e

let errors findings =
  List.filter (fun f -> f.Netcheck.severity = Netcheck.Error) findings

let replace_filter part si filter =
  let stages = Array.copy part.Partition.stages in
  stages.(si) <- { stages.(si) with Partition.filter };
  { part with Partition.stages = stages }

(* OR an extra tag into stage si's filter (simulating a corrupted or
   adversarial filter that falsely contains a foreign egress tag). *)
let with_extra_tag part si tag =
  let s = part.Partition.stages.(si) in
  let bv = Bitvec.copy (Zfilter.to_bitvec s.Partition.filter) in
  Bitvec.logor_into ~dst:bv tag;
  replace_filter part si (Zfilter.of_bitvec bv)

(* ------------------------------------------------------------------ *)
(* Properties over compiler-produced partitions                        *)
(* ------------------------------------------------------------------ *)

let prop_netcheck_accepts_plans =
  QCheck.Test.make ~name:"netcheck accepts every compiler-produced partition"
    ~count:10 QCheck.small_nat (fun seed ->
      let _g, hosts, adaptive = fixture seed ~hosts:120 in
      let subs = pick_subset (Rng.of_int (seed + 5)) hosts ~keep:70 in
      let part, diag = plan_exn adaptive ~seed ~subscribers:subs in
      (match Partition.validate part with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "validate: %s" e);
      if diag.Stagecut.stages < 1 then
        QCheck.Test.fail_report "plan produced no stages";
      match errors (Netcheck.check_partition ~subscribers:subs adaptive part) with
      | [] -> true
      | f :: _ -> QCheck.Test.fail_report (Netcheck.to_string f))

let stitch_counter engine =
  Obs.Counter.make ~labels:[ ("engine", engine) ] "lipsin_stitch_matches_total"

let prop_engines_agree =
  QCheck.Test.make
    ~name:"three engines agree bit for bit on stitched delivery (Obs included)"
    ~count:6 QCheck.small_nat (fun seed ->
      let _g, hosts, adaptive = fixture (seed + 100) ~hosts:120 in
      let subs = pick_subset (Rng.of_int (seed + 7)) hosts ~keep:60 in
      let part, _ = plan_exn adaptive ~seed ~subscribers:subs in
      let st = Stitched.make adaptive in
      Stitched.install st part;
      Obs.Sink.set Obs.Sink.Memory;
      Fun.protect
        ~finally:(fun () ->
          Stitched.uninstall st part;
          Obs.Sink.set Obs.Sink.Noop)
        (fun () ->
          let run engine name =
            let c = stitch_counter name in
            let before = Obs.Counter.value c in
            let o = Stitched.deliver ~engine st part in
            (match Stitched.exactly_once o part with
            | Ok () -> ()
            | Error e -> QCheck.Test.fail_reportf "%s exactly-once: %s" name e);
            (o, Obs.Counter.value c - before)
          in
          let oref, dref = run `Reference "reference" in
          let ofast, dfast = run `Fast "fast" in
          let obits, dbits = run `Bitsliced "bitsliced" in
          let same name (a : Stitched.outcome) (b : Stitched.outcome) =
            if a.Stitched.delivered <> b.Stitched.delivered then
              QCheck.Test.fail_reportf "%s delivered differs from reference" name;
            if a.Stitched.stage_order <> b.Stitched.stage_order then
              QCheck.Test.fail_reportf "%s stage order differs" name;
            if a.Stitched.duplicate_handoffs <> b.Stitched.duplicate_handoffs then
              QCheck.Test.fail_reportf "%s duplicate handoffs differ" name;
            if a.Stitched.link_traversals <> b.Stitched.link_traversals then
              QCheck.Test.fail_reportf "%s link traversals differ" name
          in
          same "fast" ofast oref;
          same "bitsliced" obits oref;
          (* The per-engine stitch-match meters must tick identically:
             the same decisions fire the same stitch entries. *)
          if dref <> dfast || dref <> dbits then
            QCheck.Test.fail_reportf
              "stitch counters differ: reference %d fast %d bitsliced %d" dref
              dfast dbits;
          (* Auto mixes both compiled engines; its counters split across
             labels, so compare the outcome only. *)
          let oauto = Stitched.deliver ~engine:`Auto st part in
          same "auto" oauto oref;
          true))

let prop_filter_mutation_flagged =
  QCheck.Test.make
    ~name:"zeroing any nonzero stage-filter byte yields a netcheck Error"
    ~count:10
    QCheck.(pair small_nat small_nat)
    (fun (seed, pick) ->
      let _g, hosts, adaptive = fixture (seed + 200) ~hosts:100 in
      let subs = pick_subset (Rng.of_int (seed + 9)) hosts ~keep:70 in
      let part, _ = plan_exn adaptive ~seed ~subscribers:subs in
      let si = pick mod Array.length part.Partition.stages in
      let s = part.Partition.stages.(si) in
      let bv = Bitvec.copy (Zfilter.to_bitvec s.Partition.filter) in
      let set = Bitvec.set_positions bv in
      let bytes = List.sort_uniq Int.compare (List.map (fun p -> p / 8) set) in
      match bytes with
      | [] -> true (* an empty filter has nothing to corrupt *)
      | _ ->
        let b = List.nth bytes (pick mod List.length bytes) in
        List.iter (fun p -> if p / 8 = b then Bitvec.clear bv p) set;
        let part' = replace_filter part si (Zfilter.of_bitvec bv) in
        let flagged =
          List.exists
            (fun f ->
              f.Netcheck.severity = Netcheck.Error
              && (f.Netcheck.check = "stage-coverage"
                 || f.Netcheck.check = "stage-egress"))
            (Netcheck.check_partition ~subscribers:subs adaptive part')
        in
        if not flagged then
          QCheck.Test.fail_reportf
            "stage %d byte %d zeroed but no coverage/egress Error" si b;
        true)

(* ------------------------------------------------------------------ *)
(* Hand-built partition: injected cross-stage faults                   *)
(* ------------------------------------------------------------------ *)

(* A 5-node path-and-branch graph carrying a 3-stage partition:
   stage 0 covers 0->1 and hands off at node 1 to stage 1 (links 1->2,
   2->4), which chains at its own root to stage 2 (link 1->3).  Small
   enough that every check's firing condition is knowable by hand. *)
let manual_partition () =
  let g = Graph.create ~nodes:5 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 2;
  Graph.add_edge g 1 3;
  Graph.add_edge g 2 4;
  let adaptive = Adaptive.make ~d:2 ~k:5 (Rng.of_int 42) g in
  let m = 120 in
  let asg = Adaptive.assignment adaptive ~m in
  let link src dst =
    match Graph.find_link g ~src ~dst with
    | Some l -> l
    | None -> Alcotest.fail "manual graph link missing"
  in
  let tag l = Assignment.tag asg l ~table:0 in
  let etag nonce = Lit.tag (Partition.egress_lit (Assignment.params asg) ~nonce) 0 in
  let stage index root nonce links handoffs subscribers =
    {
      Partition.index;
      m;
      table = 0;
      root;
      nonce;
      filter =
        Zfilter.of_tags ~m
          (List.map tag links @ if handoffs <> [] then [ etag nonce ] else []);
      links = List.map (fun (l : Graph.link) -> l.Graph.index) links;
      subscribers;
      handoffs;
    }
  in
  let n0 = 0x1111L and n1 = 0x2222L and n2 = 0x3333L in
  let stages =
    [|
      stage 0 0 n0 [ link 0 1 ] [ { Partition.at = 1; next = 1 } ] [];
      stage 1 1 n1
        [ link 1 2; link 2 4 ]
        [ { Partition.at = 1; next = 2 } ]
        [ 4 ];
      stage 2 1 n2 [ link 1 3 ] [] [ 3 ];
    |]
  in
  (adaptive, { Partition.id = 9; root = 0; stages }, etag, (n0, n1, n2))

let test_manual_partition_clean () =
  let adaptive, part, _etag, _ = manual_partition () in
  Alcotest.(check bool) "validates" true (Partition.validate part = Ok ());
  match errors (Netcheck.check_partition ~subscribers:[ 3; 4 ] adaptive part) with
  | [] -> ()
  | f :: _ -> Alcotest.failf "unexpected Error: %s" (Netcheck.to_string f)

let find_error part adaptive check =
  List.exists
    (fun f -> f.Netcheck.severity = Netcheck.Error && f.Netcheck.check = check)
    (Netcheck.check_partition ~subscribers:[ 3; 4 ] adaptive part)

let test_injected_cross_stage_loop () =
  (* Stage 1's filter falsely contains stage 0's egress tag; at node 1
     (on stage 1's tree) stage 0's stitch entry fires and re-enters
     stage 1 — an ancestor-of-itself re-entry, i.e. a loop. *)
  let adaptive, part, etag, (n0, _, _) = manual_partition () in
  let part' = with_extra_tag part 1 (etag n0) in
  Alcotest.(check bool) "cross-stage-loop Error" true
    (find_error part' adaptive "cross-stage-loop")

let test_injected_cross_stage_duplicate () =
  (* Stage 0's filter falsely contains stage 1's egress tag; at node 1
     (on stage 0's tree) stage 1's chained stitch entry fires and
     enters stage 2 a second time — a duplicate subtree delivery. *)
  let adaptive, part, etag, (_, n1, _) = manual_partition () in
  let part' = with_extra_tag part 0 (etag n1) in
  Alcotest.(check bool) "cross-stage-duplicate Error" true
    (find_error part' adaptive "cross-stage-duplicate")

(* ------------------------------------------------------------------ *)
(* Partition.validate structural rejections                            *)
(* ------------------------------------------------------------------ *)

let set_handoffs part si handoffs =
  let stages = Array.copy part.Partition.stages in
  stages.(si) <- { stages.(si) with Partition.handoffs };
  { part with Partition.stages = stages }

let check_invalid what expected part =
  match Partition.validate part with
  | Ok () -> Alcotest.failf "%s: validate accepted a broken partition" what
  | Error e ->
    let contains hay needle =
      let nl = String.length needle and hl = String.length hay in
      let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
      go 0
    in
    if not (contains e expected) then
      Alcotest.failf "%s: error %S does not mention %S" what e expected

let test_validate_rejections () =
  let _, part, _, _ = manual_partition () in
  (* Stage 1 entered by two handoffs. *)
  check_invalid "double entry" "is entered 2 times"
    (set_handoffs part 0
       [ { Partition.at = 1; next = 1 }; { Partition.at = 1; next = 1 } ]);
  (* Stage 1 never entered. *)
  check_invalid "orphan stage" "is never entered" (set_handoffs part 0 []);
  (* Stages 1 and 2 enter each other: a handoff cycle unreachable from
     stage 0. *)
  check_invalid "handoff cycle" "unreachable from stage 0 (handoff cycle)"
    (set_handoffs
       (set_handoffs (set_handoffs part 0 []) 1 [ { Partition.at = 1; next = 2 } ])
       2
       [ { Partition.at = 1; next = 1 } ]);
  (* Handoff to a stage that does not exist. *)
  check_invalid "missing target" "hands off to missing stage"
    (set_handoffs part 1 [ { Partition.at = 1; next = 7 } ])

(* ------------------------------------------------------------------ *)
(* Egress LITs and the audit of compiled stitch blobs                  *)
(* ------------------------------------------------------------------ *)

let test_egress_lit_strength () =
  let g = Graph.create ~nodes:3 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 0 2;
  let adaptive = Adaptive.make ~d:2 ~k:5 (Rng.of_int 11) g in
  let asg = Adaptive.assignment adaptive ~m:120 in
  let lit = Partition.egress_lit (Assignment.params asg) ~nonce:0x77L in
  (* An egress false positive re-delivers a whole subtree, so egress
     LITs spend 4x a link LIT's hash bits. *)
  Alcotest.(check int) "egress_k" 20 (Partition.egress_k ~m:120 5);
  Alcotest.(check int) "egress LIT popcount (table 0)" 20
    (Bitvec.popcount (Lit.tag lit 0));
  Alcotest.(check int) "egress LIT popcount (table 1)" 20
    (Bitvec.popcount (Lit.tag lit 1));
  Alcotest.(check int) "clamped at m" 120 (Partition.egress_k ~m:120 40)

let test_audit_stitch_blob_mutation () =
  let g = Graph.create ~nodes:3 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 0 2;
  let adaptive = Adaptive.make ~d:2 ~k:5 (Rng.of_int 11) g in
  let asg = Adaptive.assignment adaptive ~m:120 in
  let e = Node_engine.create asg 0 in
  let lit = Partition.egress_lit (Assignment.params asg) ~nonce:0x77L in
  Node_engine.install_stitch e lit ~partition:3 ~next:1;
  let bits = Bitsliced.compile e in
  Alcotest.(check bool) "clean compile audits clean" true
    (Audit.audit_bitsliced_ok bits);
  let v = Bitsliced.view bits in
  let blob = v.Bitsliced.view_stitch.(0) in
  (* Flip the lowest set bit of the first live byte of the stitch LIT:
     breaks the exact-egress_k popcount law and the row/column mirror. *)
  let i = ref 0 in
  while Bytes.get blob !i = '\000' do incr i done;
  let c = Char.code (Bytes.get blob !i) in
  Bytes.set blob !i (Char.chr (c lxor (c land -c)));
  Alcotest.(check bool) "structural audit flags it" false
    (Audit.audit_bitsliced_ok ~check_digest:false bits);
  Alcotest.(check bool) "digest audit flags it" false
    (Audit.audit_bitsliced_ok bits)

(* ------------------------------------------------------------------ *)
(* Persist round-trip and error paths                                  *)
(* ------------------------------------------------------------------ *)

let stages_equal (a : Partition.stage) (b : Partition.stage) =
  a.Partition.index = b.Partition.index
  && a.Partition.m = b.Partition.m
  && a.Partition.table = b.Partition.table
  && a.Partition.root = b.Partition.root
  && a.Partition.nonce = b.Partition.nonce
  && Zfilter.equal a.Partition.filter b.Partition.filter
  && a.Partition.links = b.Partition.links
  && a.Partition.subscribers = b.Partition.subscribers
  && a.Partition.handoffs = b.Partition.handoffs

let partitions_equal a b =
  a.Partition.id = b.Partition.id
  && a.Partition.root = b.Partition.root
  && Array.length a.Partition.stages = Array.length b.Partition.stages
  && Array.for_all2 stages_equal a.Partition.stages b.Partition.stages

let roundtrip_fixture () =
  let g, hosts, adaptive = fixture 4 ~hosts:80 in
  let subs = pick_subset (Rng.of_int 13) hosts ~keep:70 in
  let part, _ = plan_exn ~id:5 adaptive ~seed:4 ~subscribers:subs in
  (g, part)

let test_persist_roundtrip () =
  let g, part = roundtrip_fixture () in
  match Persist.of_string_partition g (Persist.to_string_partition part) with
  | Error e -> Alcotest.failf "roundtrip: %s" e
  | Ok part' ->
    Alcotest.(check bool) "identical partition" true (partitions_equal part part')

let test_persist_file_roundtrip () =
  let g, part = roundtrip_fixture () in
  let path = Filename.temp_file "lipsin_partition" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Persist.save_partition part path;
      match Persist.load_partition g path with
      | Error e -> Alcotest.failf "load: %s" e
      | Ok part' ->
        Alcotest.(check bool) "file roundtrip" true (partitions_equal part part'))

let test_persist_error_paths () =
  let g, part = roundtrip_fixture () in
  let s = Persist.to_string_partition part in
  let lines = String.split_on_char '\n' s in
  let rejoin ls = String.concat "\n" ls in
  let edit i f = rejoin (List.mapi (fun j l -> if j = i then f l else l) lines) in
  let expect what needle input =
    match Persist.of_string_partition g input with
    | Ok _ -> Alcotest.failf "%s: parser accepted corrupt input" what
    | Error e ->
      Alcotest.(check string) (what ^ " error") needle e
  in
  expect "bad magic" "bad magic line" (edit 0 (fun _ -> "lipsin-partition v9"));
  expect "truncated" "truncated partition file"
    (rejoin (List.filteri (fun i _ -> i < 3) lines));
  expect "malformed header" "malformed header line"
    (edit 3 (fun _ -> "stages many"));
  expect "malformed stage" "malformed stage line"
    (edit 4 (fun _ -> "stage zero m x table y"));
  expect "malformed filter" "malformed filter line"
    (edit 5 (fun _ -> "filter zz@@"));
  expect "link out of range" "link index out of range"
    (edit 6 (fun _ -> "links 999999"))

(* ------------------------------------------------------------------ *)
(* Regressions                                                         *)
(* ------------------------------------------------------------------ *)

(* The failure partitioning exists to fix: a tree too big for ANY
   single width of the family still plans, verifies and delivers
   exactly once as a stitched partition. *)
let test_single_filter_fill_limit_regression () =
  let g, hosts, adaptive = fixture 3 ~hosts:250 in
  let tree = Spt.delivery_tree g ~root:0 ~subscribers:hosts in
  Alcotest.(check bool) "no single width carries the tree" true
    (Adaptive.choose adaptive ~tree ~target_fpa:1.0 () = None);
  let part, diag = plan_exn adaptive ~seed:3 ~subscribers:hosts in
  Alcotest.(check bool) "partitioned into several stages" true
    (diag.Stagecut.stages > 1);
  (match errors (Netcheck.check_partition ~subscribers:hosts adaptive part) with
  | [] -> ()
  | f :: _ -> Alcotest.failf "netcheck Error: %s" (Netcheck.to_string f));
  let st = Stitched.make adaptive in
  Stitched.install st part;
  let o = Stitched.deliver ~engine:`Auto st part in
  match Stitched.exactly_once o part with
  | Ok () -> ()
  | Error e -> Alcotest.failf "exactly-once: %s" e

(* Pin the Auto crossover inside the measured bracket.  BENCH_PR5 and
   BENCH_PR6 engine sweeps: scalar wins at 8 ports (0.79-0.81x
   speedup), parity at 16 (0.88-1.04x), bit-sliced wins from 32 up
   (1.22x and rising).  A threshold at or below 8 would route
   low-degree nodes to the slower engine; above 32 would strand the
   bit-sliced win. *)
let test_auto_threshold_pinned () =
  Alcotest.(check bool) "above the scalar-dominant degree (8)" true
    (Bitsliced.auto_threshold > 8);
  Alcotest.(check bool) "at or below the bitsliced-dominant degree (32)" true
    (Bitsliced.auto_threshold <= 32)

(* ------------------------------------------------------------------ *)
(* Dynamic trace cross-check and the anomaly flight recorder           *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let with_tracing f =
  Obs.Sink.set Obs.Sink.Memory;
  Obs.Trace.set_recording true;
  Obs.Trace.set_sampling 1;
  Fun.protect ~finally:(fun () -> Obs.Sink.set Obs.Sink.Noop) f

(* Every engine's stitched delivery of the clean hand-built partition
   reconstructs into an error-free span forest whose events cross all
   three stage boundaries under one publication id. *)
let test_stitched_span_crosscheck () =
  with_tracing (fun () ->
      let adaptive, part, _, _ = manual_partition () in
      let st = Stitched.make adaptive in
      Stitched.install st part;
      Fun.protect
        ~finally:(fun () -> Stitched.uninstall st part)
        (fun () ->
          List.iter
            (fun (engine, name) ->
              let o = Stitched.deliver ~engine st part in
              Alcotest.(check bool) (name ^ " sampled") true
                (o.Stitched.packet_id >= 0);
              let tree = Obs.Span.of_packet o.Stitched.packet_id in
              Alcotest.(check bool) (name ^ " span forest is error-free")
                false (Obs.Span.has_errors tree);
              let stages =
                List.sort_uniq Int.compare
                  (List.filter_map
                     (fun e ->
                       if e.Obs.Trace.ev_stage >= 0 then
                         Some e.Obs.Trace.ev_stage
                       else None)
                     tree.Obs.Span.tr_events)
              in
              Alcotest.(check (list int))
                (name ^ " spans cross all three stages")
                [ 0; 1; 2 ] stages;
              Alcotest.(check (list string)) (name ^ " no anomalies") []
                o.Stitched.trace_anomalies)
            [ (`Reference, "reference"); (`Fast, "fast");
              (`Bitsliced, "bitsliced") ]))

(* The dynamic twin of [test_injected_cross_stage_duplicate]: running
   the corrupted partition (stage 0's filter falsely contains stage 1's
   egress tag) makes stage 2 activate twice at runtime.  The span
   cross-check must flag it and the flight recorder must freeze and
   dump a post-mortem file, creating parent directories on the way. *)
let test_flight_fires_on_injected_duplicate () =
  with_tracing (fun () ->
      let adaptive, part, etag, (_, n1, _) = manual_partition () in
      let part' = with_extra_tag part 0 (etag n1) in
      let st = Stitched.make adaptive in
      Stitched.install st part';
      let dir =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "lipsin-flight-%d/nested" (Unix.getpid ()))
      in
      Obs.Flight.reset ();
      Obs.Flight.configure ~dir ();
      Fun.protect
        ~finally:(fun () ->
          Stitched.uninstall st part';
          Obs.Flight.reset ())
        (fun () ->
          let o = Stitched.deliver ~engine:`Fast st part' in
          Alcotest.(check bool) "duplicate handoff suppressed at runtime"
            true
            (o.Stitched.duplicate_handoffs > 0);
          Alcotest.(check bool) "span cross-check reports the duplicate"
            true
            (List.exists
               (fun s -> contains s "activated more than once")
               o.Stitched.trace_anomalies);
          Alcotest.(check bool) "recorder froze" true (Obs.Flight.frozen ());
          match Obs.Flight.last_dump () with
          | None -> Alcotest.fail "flight recorder did not dump"
          | Some d ->
            Alcotest.(check bool) "duplicate-activation trigger" true
              (d.Obs.Flight.dm_trigger = Obs.Flight.Duplicate_activation);
            (match d.Obs.Flight.dm_path with
            | None -> Alcotest.fail "post-mortem file was not written"
            | Some p ->
              Alcotest.(check bool) "post-mortem file exists" true
                (Sys.file_exists p);
              let ic = open_in p in
              let body =
                Fun.protect
                  ~finally:(fun () -> close_in ic)
                  (fun () -> really_input_string ic (in_channel_length ic))
              in
              Alcotest.(check bool) "dump names the trigger" true
                (contains body "duplicate-activation"))))

let () =
  Alcotest.run "partition"
    [
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_netcheck_accepts_plans;
          QCheck_alcotest.to_alcotest prop_engines_agree;
          QCheck_alcotest.to_alcotest prop_filter_mutation_flagged;
        ] );
      ( "injections",
        [
          Alcotest.test_case "hand-built partition is clean" `Quick
            test_manual_partition_clean;
          Alcotest.test_case "injected cross-stage loop is an Error" `Quick
            test_injected_cross_stage_loop;
          Alcotest.test_case "injected duplicate delivery is an Error" `Quick
            test_injected_cross_stage_duplicate;
          Alcotest.test_case "validate rejects broken stage forests" `Quick
            test_validate_rejections;
        ] );
      ( "egress",
        [
          Alcotest.test_case "egress LITs spend 4x hash bits" `Quick
            test_egress_lit_strength;
          Alcotest.test_case "audit flags stitch blob corruption" `Quick
            test_audit_stitch_blob_mutation;
        ] );
      ( "persist",
        [
          Alcotest.test_case "string roundtrip" `Quick test_persist_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_persist_file_roundtrip;
          Alcotest.test_case "error paths" `Quick test_persist_error_paths;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "fill-limit failure fixed by partitioning" `Slow
            test_single_filter_fill_limit_regression;
          Alcotest.test_case "auto threshold pinned to bench bracket" `Quick
            test_auto_threshold_pinned;
        ] );
      ( "flight",
        [
          Alcotest.test_case "stitched spans cross-check clean" `Quick
            test_stitched_span_crosscheck;
          Alcotest.test_case "recorder fires on injected duplicate" `Quick
            test_flight_fires_on_injected_duplicate;
        ] );
    ]
