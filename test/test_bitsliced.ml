(* Differential tests for the bit-sliced (transposed-table) engine: it
   must agree with BOTH the reference Node_engine and the row-major
   Fastpath decision-for-decision — forward set, local delivery,
   service matches, loop suspicion, drop reason and membership-test
   count — across random topologies, kill bits (failed links),
   blocking vetoes, virtual links, fill drops and loop-cache
   interactions.  Plus: batch agreement, the byte-plane path at high
   degree, `Auto engine delivery parity, and audit mutation properties
   (a byte flip in a column blob is always flagged). *)

module Bitvec = Lipsin_bitvec.Bitvec
module Lit = Lipsin_bloom.Lit
module Zfilter = Lipsin_bloom.Zfilter
module Graph = Lipsin_topology.Graph
module Generator = Lipsin_topology.Generator
module Spt = Lipsin_topology.Spt
module As_presets = Lipsin_topology.As_presets
module Assignment = Lipsin_core.Assignment
module Candidate = Lipsin_core.Candidate
module Node_engine = Lipsin_forwarding.Node_engine
module Fastpath = Lipsin_forwarding.Fastpath
module Bitsliced = Lipsin_forwarding.Bitsliced
module Audit = Lipsin_analysis.Audit
module Net = Lipsin_sim.Net
module Run = Lipsin_sim.Run
module Rng = Lipsin_util.Rng

let link_indexes v = List.map (fun l -> l.Graph.index) v

let same_verdict (a : Node_engine.verdict) (b : Node_engine.verdict) =
  link_indexes a.Node_engine.forward_on = link_indexes b.Node_engine.forward_on
  && a.Node_engine.deliver_local = b.Node_engine.deliver_local
  && a.Node_engine.services_matched = b.Node_engine.services_matched
  && a.Node_engine.loop_suspected = b.Node_engine.loop_suspected
  && a.Node_engine.drop = b.Node_engine.drop
  && a.Node_engine.false_positive_tests = b.Node_engine.false_positive_tests

let pp_verdict (v : Node_engine.verdict) =
  Printf.sprintf "{fwd=[%s]; local=%b; svc=[%s]; susp=%b; drop=%s; tests=%d}"
    (String.concat ";" (List.map string_of_int (link_indexes v.Node_engine.forward_on)))
    v.Node_engine.deliver_local
    (String.concat ";" v.Node_engine.services_matched)
    v.Node_engine.loop_suspected
    (match v.Node_engine.drop with
    | None -> "-"
    | Some Node_engine.Fill_limit_exceeded -> "fill"
    | Some Node_engine.Loop_detected -> "loop"
    | Some Node_engine.Bad_table -> "table")
    v.Node_engine.false_positive_tests

(* One random scenario: a topology, an engine with random failures,
   virtuals, blocks and services, both compilations, and a zFilter pool
   biased towards the node's tables so matches, loops, vetoes and fill
   drops actually fire.  Mirrors test_fastpath's generator so the two
   suites explore the same state space. *)
type scenario = {
  sc_graph : Graph.t;
  sc_node : Graph.node;
  sc_d : int;
  sc_engine : Node_engine.t;
  sc_fast : Fastpath.t;
  sc_bits : Bitsliced.t;
  sc_pool : (Zfilter.t * int) array;
}

let build_scenario seed ~nodes =
  let rng = Rng.of_int seed in
  let extra = Rng.int rng (max 1 (nodes / 2)) in
  let graph =
    Generator.pref_attach ~rng ~nodes ~edges:(nodes - 1 + extra) ~max_degree:8 ()
  in
  let m = [| 61; 64; 120; 248 |].(Rng.int rng 4) in
  let d = 1 + Rng.int rng 4 in
  let k = 3 + Rng.int rng 3 in
  let params = Lit.constant_k ~m ~d ~k in
  let asg = Assignment.make params (Rng.split rng) graph in
  let node = Rng.int rng (Graph.node_count graph) in
  let fill_limit = [| 0.5; 0.7; 1.0 |].(Rng.int rng 3) in
  let loop_cache_capacity = [| 1; 2; 4; 64 |].(Rng.int rng 4) in
  let loop_cache_ttl = Rng.int rng 3 in
  let loop_prevention = Rng.int rng 10 < 9 in
  let engine =
    Node_engine.create ~fill_limit ~loop_cache_capacity ~loop_cache_ttl
      ~loop_prevention asg node
  in
  let out = Array.of_list (Graph.out_links graph node) in
  let extra_lits = ref [] in
  Array.iter
    (fun l -> if Rng.float rng 1.0 < 0.25 then Node_engine.fail_link engine l)
    out;
  for _ = 1 to Rng.int rng 3 do
    let vlit = Lit.fresh params (Rng.split rng) in
    let out_links =
      Array.to_list (Array.of_seq (Seq.filter (fun _ -> Rng.bool rng)
        (Array.to_seq out)))
    in
    Node_engine.install_virtual engine vlit ~out_links;
    extra_lits := vlit :: !extra_lits
  done;
  if Array.length out > 0 then
    for _ = 1 to Rng.int rng 3 do
      let victim = out.(Rng.int rng (Array.length out)) in
      if Rng.bool rng then begin
        let neg = Lit.fresh params (Rng.split rng) in
        Node_engine.install_block engine victim neg;
        extra_lits := neg :: !extra_lits
      end
      else begin
        let table = Rng.int rng d in
        let donor = Graph.link graph (Rng.int rng (Graph.link_count graph)) in
        Node_engine.install_block_pattern engine victim ~table
          (Assignment.tag asg donor ~table)
      end
    done;
  for i = 1 to Rng.int rng 3 do
    let slit = Lit.fresh params (Rng.split rng) in
    Node_engine.install_service engine slit ~name:(Printf.sprintf "svc%d" i);
    extra_lits := slit :: !extra_lits
  done;
  let fast = Fastpath.compile engine in
  let bits = Bitsliced.compile engine in
  let pool =
    Array.init 3 (fun _ ->
        let table = Rng.int rng d in
        let z = Zfilter.create ~m in
        if Rng.int rng 10 = 0 then Bitvec.set_all (Zfilter.to_bitvec z)
        else begin
          for _ = 1 to 1 + Rng.int rng 5 do
            let l = Graph.link graph (Rng.int rng (Graph.link_count graph)) in
            Zfilter.add z (Assignment.tag asg l ~table)
          done;
          if Rng.int rng 3 = 0 && Array.length out > 0 then begin
            let l = out.(Rng.int rng (Array.length out)) in
            Zfilter.add z
              (Assignment.tag asg (Graph.reverse_link graph l) ~table)
          end;
          if Rng.int rng 4 = 0 then
            Zfilter.add z (Lit.tag (Node_engine.local_lit engine) table);
          List.iter
            (fun lit ->
              if Rng.int rng 4 = 0 then Zfilter.add z (Lit.tag lit table))
            !extra_lits;
          for _ = 1 to Rng.int rng 4 do
            Bitvec.set (Zfilter.to_bitvec z) (Rng.int rng m)
          done
        end;
        (z, table))
  in
  { sc_graph = graph; sc_node = node; sc_d = d; sc_engine = engine;
    sc_fast = fast; sc_bits = bits; sc_pool = pool }

(* Drive all three engines through the same decision sequence (each has
   its own loop cache, all of which must evolve identically) and compare
   verdicts step by step. *)
let run_differential seed ~nodes ~steps =
  let sc = build_scenario seed ~nodes in
  let rng = Rng.of_int (seed lxor 0x5CA1AB1E) in
  let out = Array.of_list (Graph.out_links sc.sc_graph sc.sc_node) in
  let failure = ref None in
  for step = 1 to steps do
    if !failure = None then begin
      let z, suggested = sc.sc_pool.(Rng.int rng (Array.length sc.sc_pool)) in
      let table =
        match Rng.int rng 10 with
        | 0 -> -1
        | 1 -> sc.sc_d
        | _ -> suggested
      in
      let in_link =
        if Rng.int rng 10 < 3 || Array.length out = 0 then None
        else if Rng.int rng 10 < 7 then
          Some (Graph.reverse_link sc.sc_graph (out.(Rng.int rng (Array.length out))))
        else
          Some (Graph.link sc.sc_graph (Rng.int rng (Graph.link_count sc.sc_graph)))
      in
      if Rng.int rng 5 = 0 then begin
        Node_engine.tick sc.sc_engine;
        Fastpath.tick sc.sc_fast;
        Bitsliced.tick sc.sc_bits
      end;
      let reference =
        Node_engine.forward sc.sc_engine ~table ~zfilter:z ~in_link
      in
      let in_link_index =
        match in_link with None -> -1 | Some l -> l.Graph.index
      in
      let fast =
        Fastpath.verdict sc.sc_fast
          (Fastpath.decide sc.sc_fast ~table ~zfilter:z ~in_link_index)
      in
      let bits =
        Bitsliced.verdict sc.sc_bits
          (Bitsliced.decide sc.sc_bits ~table ~zfilter:z ~in_link_index)
      in
      if not (same_verdict reference bits) then
        failure :=
          Some
            (Printf.sprintf "step %d table %d: ref %s / bitsliced %s" step table
               (pp_verdict reference) (pp_verdict bits))
      else if not (same_verdict fast bits) then
        failure :=
          Some
            (Printf.sprintf "step %d table %d: fast %s / bitsliced %s" step table
               (pp_verdict fast) (pp_verdict bits))
    end
  done;
  !failure

let case_arb =
  QCheck.make
    ~print:(fun (seed, nodes, steps) ->
      Printf.sprintf "seed=%d nodes=%d steps=%d" seed nodes steps)
    QCheck.Gen.(triple (int_bound 1_000_000) (int_range 4 20) (int_range 4 12))

let prop_differential =
  QCheck.Test.make
    ~name:"bitsliced agrees with reference and fastpath" ~count:1000 case_arb
    (fun (seed, nodes, steps) ->
      match run_differential seed ~nodes ~steps with
      | None -> true
      | Some msg -> QCheck.Test.fail_report msg)

let prop_batch_matches_reference =
  QCheck.Test.make ~name:"decide_batch agrees with sequential reference"
    ~count:200 case_arb
    (fun (seed, nodes, steps) ->
      let sc = build_scenario seed ~nodes in
      let rng = Rng.of_int (seed + 77) in
      let _, table = sc.sc_pool.(0) in
      let out = Array.of_list (Graph.out_links sc.sc_graph sc.sc_node) in
      let inputs =
        Array.init (max 1 (steps * 7)) (fun i ->
            let z, _ = sc.sc_pool.(i mod Array.length sc.sc_pool) in
            let in_idx =
              if Array.length out = 0 || Rng.bool rng then -1
              else
                (Graph.reverse_link sc.sc_graph
                   out.(Rng.int rng (Array.length out))).Graph.index
            in
            (z, in_idx))
      in
      let table = if table >= 0 && table < sc.sc_d then table else 0 in
      let bits_verdicts = ref [] in
      Bitsliced.decide_batch sc.sc_bits ~table inputs ~f:(fun _ d ->
          bits_verdicts := Bitsliced.verdict sc.sc_bits d :: !bits_verdicts);
      let bits_verdicts = List.rev !bits_verdicts in
      let reference_verdicts =
        Array.to_list
          (Array.map
             (fun (z, in_idx) ->
               let in_link =
                 if in_idx < 0 then None
                 else Some (Graph.link sc.sc_graph in_idx)
               in
               Node_engine.forward sc.sc_engine ~table ~zfilter:z ~in_link)
             inputs)
      in
      List.for_all2 same_verdict reference_verdicts bits_verdicts)

(* --- byte-plane path: a hub beyond the auto threshold --- *)

(* The random scenarios above have max_degree 8, i.e. nibble planes.
   A star hub with 80 leaves crosses auto_threshold, so the compile
   picks byte planes and the multi-block (sub > 1) sweep runs. *)
let test_byte_plane_agreement () =
  let deg = 80 in
  let g = Graph.create ~nodes:(deg + 1) in
  for leaf = 1 to deg do
    Graph.add_edge g 0 leaf
  done;
  let asg = Assignment.make Lit.default (Rng.of_int 3) g in
  let engine = Node_engine.create asg 0 in
  (* A few failed links so the kill column is non-trivial. *)
  let out = Array.of_list (Graph.out_links g 0) in
  Node_engine.fail_link engine out.(3);
  Node_engine.fail_link engine out.(41);
  let fast = Fastpath.compile engine in
  let bits = Bitsliced.compile engine in
  Alcotest.(check int) "byte planes above threshold" 8 (Bitsliced.plane_bits bits);
  Alcotest.(check (list string)) "audit clean" []
    (List.map Audit.to_string (Audit.audit_bitsliced bits));
  let rng = Rng.of_int 5 in
  for step = 1 to 300 do
    let z = Zfilter.create ~m:(Lit.default.Lit.m) in
    let nsel = 1 + Rng.int rng 24 in
    for _ = 1 to nsel do
      Zfilter.add z (Assignment.tag asg out.(Rng.int rng deg) ~table:0)
    done;
    let reference = Node_engine.forward engine ~table:0 ~zfilter:z ~in_link:None in
    let f =
      Fastpath.verdict fast (Fastpath.decide fast ~table:0 ~zfilter:z ~in_link_index:(-1))
    in
    let b =
      Bitsliced.verdict bits
        (Bitsliced.decide bits ~table:0 ~zfilter:z ~in_link_index:(-1))
    in
    if not (same_verdict reference b && same_verdict f b) then
      Alcotest.failf "step %d: ref %s / fast %s / bitsliced %s" step
        (pp_verdict reference) (pp_verdict f) (pp_verdict b)
  done

(* --- `Auto / `Bitsliced engines end-to-end through Run --- *)

let test_delivery_agreement () =
  let graph = As_presets.as6461 () in
  let asg = Assignment.make Lit.default (Rng.of_int 42) graph in
  let rng = Rng.of_int 43 in
  let picks = Rng.sample rng 16 (Graph.node_count graph) in
  let tree =
    Spt.delivery_tree graph ~root:picks.(0)
      ~subscribers:(Array.to_list (Array.sub picks 1 15))
  in
  let c = Candidate.build_one asg ~tree ~table:0 in
  let run engine =
    let net = Net.make ~loop_prevention:false asg in
    Run.deliver ~engine net ~src:picks.(0) ~table:0
      ~zfilter:c.Candidate.zfilter ~tree
  in
  let a = run `Reference in
  List.iter
    (fun engine ->
      let b = run engine in
      Alcotest.(check (list int)) "same traversal"
        (link_indexes a.Run.traversed) (link_indexes b.Run.traversed);
      Alcotest.(check int) "same tests" a.Run.membership_tests b.Run.membership_tests;
      Alcotest.(check int) "same fp" a.Run.false_positives b.Run.false_positives;
      Alcotest.(check bool) "same reached" true (a.Run.reached = b.Run.reached))
    [ `Bitsliced; `Auto ]

let test_net_invalidates_bitsliced () =
  let graph = As_presets.as6461 () in
  let asg = Assignment.make Lit.default (Rng.of_int 7) graph in
  let net = Net.make ~loop_prevention:false asg in
  let rng = Rng.of_int 8 in
  let picks = Rng.sample rng 8 (Graph.node_count graph) in
  let tree =
    Spt.delivery_tree graph ~root:picks.(0)
      ~subscribers:(Array.to_list (Array.sub picks 1 7))
  in
  let c = Candidate.build_one asg ~tree ~table:0 in
  let first = List.hd tree in
  ignore (Net.bitsliced net first.Graph.src);
  Net.fail_link net first;
  let o =
    Run.deliver ~engine:`Bitsliced net ~src:picks.(0) ~table:0
      ~zfilter:c.Candidate.zfilter ~tree
  in
  Alcotest.(check bool) "failed link not traversed" false
    (List.exists (fun l -> l.Graph.index = first.Graph.index) o.Run.traversed)

let test_net_audit_gate () =
  Unix.putenv "LIPSIN_FASTPATH_AUDIT" "1";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "LIPSIN_FASTPATH_AUDIT" "")
    (fun () ->
      let rng = Rng.of_int 11 in
      let graph = Generator.pref_attach ~rng ~nodes:8 ~edges:10 ~max_degree:4 () in
      let params = Lit.constant_k ~m:64 ~d:2 ~k:4 in
      let asg = Assignment.make params (Rng.split rng) graph in
      let net = Net.make asg in
      ignore (Net.bitsliced net 0);
      let z = Zfilter.create ~m:64 in
      let o = Run.deliver ~engine:`Bitsliced net ~src:0 ~table:0 ~zfilter:z ~tree:[] in
      Alcotest.(check bool) "delivery ran under the audit gate" true
        (o.Run.link_traversals >= 0))

(* --- audit mutation properties --- *)

let seed_arb = QCheck.make QCheck.Gen.(int_bound 1_000_000)

let prop_audit_accepts_compiles =
  QCheck.Test.make ~name:"audit accepts every Bitsliced.compile output"
    ~count:250 seed_arb
    (fun seed ->
      let sc = build_scenario seed ~nodes:12 in
      match Audit.audit_bitsliced sc.sc_bits with
      | [] -> true
      | v :: _ -> QCheck.Test.fail_report (Audit.to_string v))

let prop_column_flip_flagged =
  (* Every byte of every column blob is covered by the col-mirror
     structural check (each canonical column word is recomputed from the
     row blobs), so corruption is caught even without the digest. *)
  QCheck.Test.make ~name:"column-blob byte flip is always flagged" ~count:300
    seed_arb
    (fun seed ->
      let sc = build_scenario seed ~nodes:12 in
      let rng = Rng.of_int (seed lxor 0xC0DE) in
      let v = Bitsliced.view sc.sc_bits in
      let cols =
        List.filter
          (fun sl -> Bytes.length sl.Bitsliced.sv_cols > 0)
          (List.concat_map Array.to_list (Array.to_list v.Bitsliced.view_slices))
      in
      match cols with
      | [] -> true
      | _ ->
        let sl = List.nth cols (Rng.int rng (List.length cols)) in
        let blob = sl.Bitsliced.sv_cols in
        let pos = Rng.int rng (Bytes.length blob) in
        let delta = 1 + Rng.int rng 255 in
        Bytes.set blob pos
          (Char.chr (Char.code (Bytes.get blob pos) lxor delta));
        (not (Audit.audit_bitsliced_ok ~check_digest:false sc.sc_bits))
        && not (Audit.audit_bitsliced_ok sc.sc_bits))

let prop_plane_flip_flagged =
  (* The derived plane words are cross-checked against the canonical
     columns (col-plane), so acceleration-structure corruption cannot
     silently change decisions either. *)
  QCheck.Test.make ~name:"plane word corruption is always flagged" ~count:200
    seed_arb
    (fun seed ->
      let sc = build_scenario seed ~nodes:12 in
      let rng = Rng.of_int (seed lxor 0xFACADE) in
      let v = Bitsliced.view sc.sc_bits in
      let planes =
        List.filter
          (fun sl -> Array.length sl.Bitsliced.sv_plane > 0)
          (List.concat_map Array.to_list (Array.to_list v.Bitsliced.view_slices))
      in
      match planes with
      | [] -> true
      | _ ->
        let sl = List.nth planes (Rng.int rng (List.length planes)) in
        let plane = sl.Bitsliced.sv_plane in
        let pos = Rng.int rng (Array.length plane) in
        plane.(pos) <- plane.(pos) lxor (1 lsl Rng.int rng 32);
        not (Audit.audit_bitsliced_ok ~check_digest:false sc.sc_bits))

let () =
  Alcotest.run "bitsliced"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_differential;
          QCheck_alcotest.to_alcotest prop_batch_matches_reference;
        ] );
      ( "integration",
        [
          Alcotest.test_case "byte-plane hub agreement" `Quick
            test_byte_plane_agreement;
          Alcotest.test_case "delivery agreement (bitsliced, auto)" `Quick
            test_delivery_agreement;
          Alcotest.test_case "net invalidates on failure" `Quick
            test_net_invalidates_bitsliced;
          Alcotest.test_case "Net audit gate (env hook)" `Quick
            test_net_audit_gate;
        ] );
      ( "audit",
        [
          QCheck_alcotest.to_alcotest prop_audit_accepts_compiles;
          QCheck_alcotest.to_alcotest prop_column_flip_flagged;
          QCheck_alcotest.to_alcotest prop_plane_flip_flagged;
        ] );
    ]
