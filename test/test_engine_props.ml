(* Property tests of forwarding-engine invariants: the guarantees every
   other layer builds on. *)

module Bitvec = Lipsin_bitvec.Bitvec
module Lit = Lipsin_bloom.Lit
module Zfilter = Lipsin_bloom.Zfilter
module Graph = Lipsin_topology.Graph
module Generator = Lipsin_topology.Generator
module Assignment = Lipsin_core.Assignment
module Node_engine = Lipsin_forwarding.Node_engine
module Rng = Lipsin_util.Rng

let build_fixture seed =
  let g =
    Generator.pref_attach ~rng:(Rng.of_int (seed + 307)) ~nodes:25 ~edges:45
      ~max_degree:9 ()
  in
  let asg = Assignment.make Lit.paper_variable (Rng.of_int seed) g in
  (g, asg)

let random_zfilter asg rng ~links =
  let g = Assignment.graph asg in
  let all = Graph.links g in
  let z = Zfilter.create ~m:248 in
  for _ = 1 to links do
    let l = all.(Rng.int rng (Array.length all)) in
    Zfilter.add z (Assignment.tag asg l ~table:0)
  done;
  z

let prop_forward_on_subset_of_ports =
  QCheck.Test.make ~name:"forwarded links are outgoing physical links" ~count:150
    QCheck.(pair small_nat (int_range 1 20))
    (fun (seed, nlinks) ->
      let g, asg = build_fixture seed in
      let rng = Rng.of_int (seed + 1) in
      let node = Rng.int rng (Graph.node_count g) in
      let engine = Node_engine.create asg node in
      let z = random_zfilter asg rng ~links:nlinks in
      let v = Node_engine.forward engine ~table:0 ~zfilter:z ~in_link:None in
      let ports = List.map (fun l -> l.Graph.index) (Graph.out_links g node) in
      List.for_all
        (fun l -> List.mem l.Graph.index ports)
        v.Node_engine.forward_on)

let prop_forward_no_duplicates =
  QCheck.Test.make ~name:"verdict never lists a link twice" ~count:150
    QCheck.(pair small_nat (int_range 1 25))
    (fun (seed, nlinks) ->
      let g, asg = build_fixture seed in
      let rng = Rng.of_int (seed + 2) in
      let node = Rng.int rng (Graph.node_count g) in
      let engine = Node_engine.create asg node in
      (* Include a virtual entry over the node's ports to stress dedup. *)
      let out = Graph.out_links g node in
      let vlit = Lit.fresh Lit.paper_variable rng in
      Node_engine.install_virtual engine vlit ~out_links:out;
      let z = random_zfilter asg rng ~links:nlinks in
      Zfilter.add z (Lit.tag vlit 0);
      let v = Node_engine.forward engine ~table:0 ~zfilter:z ~in_link:None in
      let idx = List.map (fun l -> l.Graph.index) v.Node_engine.forward_on in
      List.length idx = List.length (List.sort_uniq Int.compare idx))

let prop_forward_deterministic =
  QCheck.Test.make ~name:"same packet, same verdict (stateless decision)" ~count:100
    QCheck.(pair small_nat (int_range 1 15))
    (fun (seed, nlinks) ->
      let g, asg = build_fixture seed in
      let rng = Rng.of_int (seed + 3) in
      let node = Rng.int rng (Graph.node_count g) in
      (* loop prevention off: its cache is intentionally stateful *)
      let engine = Node_engine.create ~loop_prevention:false asg node in
      let z = random_zfilter asg rng ~links:nlinks in
      let v1 = Node_engine.forward engine ~table:0 ~zfilter:z ~in_link:None in
      let v2 = Node_engine.forward engine ~table:0 ~zfilter:z ~in_link:None in
      List.map (fun l -> l.Graph.index) v1.Node_engine.forward_on
      = List.map (fun l -> l.Graph.index) v2.Node_engine.forward_on)

let prop_monotone_in_zfilter =
  QCheck.Test.make ~name:"adding bits never removes matches (below fill limit)"
    ~count:100
    QCheck.(pair small_nat (int_range 1 6))
    (fun (seed, nlinks) ->
      let g, asg = build_fixture seed in
      let rng = Rng.of_int (seed + 4) in
      let node = Rng.int rng (Graph.node_count g) in
      let engine = Node_engine.create ~loop_prevention:false asg node in
      let z = random_zfilter asg rng ~links:nlinks in
      let bigger = Zfilter.copy z in
      Zfilter.add bigger (random_zfilter asg rng ~links:2 |> Zfilter.to_bitvec);
      if not (Zfilter.within_fill_limit bigger ~limit:0.7) then true
      else begin
        let v1 = Node_engine.forward engine ~table:0 ~zfilter:z ~in_link:None in
        let v2 = Node_engine.forward engine ~table:0 ~zfilter:bigger ~in_link:None in
        let i2 = List.map (fun l -> l.Graph.index) v2.Node_engine.forward_on in
        List.for_all
          (fun l -> List.mem l.Graph.index i2)
          v1.Node_engine.forward_on
      end)

let prop_table_isolation =
  QCheck.Test.make ~name:"a filter built for table i rarely matches in table j"
    ~count:100 QCheck.small_nat
    (fun seed ->
      let g, asg = build_fixture seed in
      let rng = Rng.of_int (seed + 5) in
      let node = Rng.int rng (Graph.node_count g) in
      let engine = Node_engine.create ~loop_prevention:false asg node in
      (* Encode the node's own ports in table 0... *)
      let out = Graph.out_links g node in
      let z = Zfilter.create ~m:248 in
      List.iter (fun l -> Zfilter.add z (Assignment.tag asg l ~table:0)) out;
      if not (Zfilter.within_fill_limit z ~limit:0.7) then true
      else begin
        let v0 = Node_engine.forward engine ~table:0 ~zfilter:z ~in_link:None in
        let v3 = Node_engine.forward engine ~table:3 ~zfilter:z ~in_link:None in
        (* Table 0 matches every port; table 3 should match almost
           none of them (different tags). *)
        List.length v0.Node_engine.forward_on = List.length out
        && List.length v3.Node_engine.forward_on < List.length out
      end)

let prop_tests_counted =
  QCheck.Test.make ~name:"membership tests = ports + virtual entries" ~count:100
    QCheck.small_nat
    (fun seed ->
      let g, asg = build_fixture seed in
      let rng = Rng.of_int (seed + 6) in
      let node = Rng.int rng (Graph.node_count g) in
      let engine = Node_engine.create ~loop_prevention:false asg node in
      let vlit = Lit.fresh Lit.paper_variable rng in
      Node_engine.install_virtual engine vlit ~out_links:[];
      let z = random_zfilter asg rng ~links:3 in
      let v = Node_engine.forward engine ~table:0 ~zfilter:z ~in_link:None in
      v.Node_engine.false_positive_tests = Graph.out_degree g node + 1)

let () =
  Alcotest.run "engine-props"
    [
      ( "invariants",
        [
          QCheck_alcotest.to_alcotest prop_forward_on_subset_of_ports;
          QCheck_alcotest.to_alcotest prop_forward_no_duplicates;
          QCheck_alcotest.to_alcotest prop_forward_deterministic;
          QCheck_alcotest.to_alcotest prop_monotone_in_zfilter;
          QCheck_alcotest.to_alcotest prop_table_isolation;
          QCheck_alcotest.to_alcotest prop_tests_counted;
        ] );
    ]
