(* Tests for Lipsin_bitvec.Bitvec. *)

module Bitvec = Lipsin_bitvec.Bitvec
module Rng = Lipsin_util.Rng

let random_vec rng ~bits ~density =
  let v = Bitvec.create bits in
  for i = 0 to bits - 1 do
    if Rng.float rng 1.0 < density then Bitvec.set v i
  done;
  v

let test_create_zeroed () =
  let v = Bitvec.create 248 in
  Alcotest.(check int) "length" 248 (Bitvec.length v);
  Alcotest.(check int) "popcount 0" 0 (Bitvec.popcount v);
  for i = 0 to 247 do
    Alcotest.(check bool) "bit clear" false (Bitvec.get v i)
  done

let test_create_rejects_nonpositive () =
  Alcotest.check_raises "zero bits"
    (Invalid_argument "Bitvec.create: length must be positive") (fun () ->
      ignore (Bitvec.create 0))

let test_set_get_clear () =
  let v = Bitvec.create 100 in
  Bitvec.set v 0;
  Bitvec.set v 63;
  Bitvec.set v 64;
  Bitvec.set v 99;
  Alcotest.(check int) "popcount" 4 (Bitvec.popcount v);
  Alcotest.(check bool) "bit 63" true (Bitvec.get v 63);
  Bitvec.clear v 63;
  Alcotest.(check bool) "cleared" false (Bitvec.get v 63);
  Alcotest.(check int) "popcount after clear" 3 (Bitvec.popcount v)

let test_index_bounds () =
  let v = Bitvec.create 10 in
  Alcotest.check_raises "get out of range"
    (Invalid_argument "Bitvec: index out of range") (fun () ->
      ignore (Bitvec.get v 10));
  Alcotest.check_raises "set negative"
    (Invalid_argument "Bitvec: index out of range") (fun () -> Bitvec.set v (-1))

let test_set_all_respects_length () =
  let v = Bitvec.create 13 in
  Bitvec.set_all v;
  Alcotest.(check int) "popcount = length" 13 (Bitvec.popcount v);
  Alcotest.(check (float 1e-9)) "fill = 1.0" 1.0 (Bitvec.fill_ratio v)

let test_reset () =
  let v = Bitvec.create 50 in
  Bitvec.set_all v;
  Bitvec.reset v;
  Alcotest.(check int) "popcount 0" 0 (Bitvec.popcount v)

let test_logor_logand () =
  let a = Bitvec.of_positions 16 [ 0; 1; 2 ] in
  let b = Bitvec.of_positions 16 [ 2; 3 ] in
  Alcotest.(check (list int)) "or" [ 0; 1; 2; 3 ]
    (Bitvec.set_positions (Bitvec.logor a b));
  Alcotest.(check (list int)) "and" [ 2 ] (Bitvec.set_positions (Bitvec.logand a b))

let test_length_mismatch () =
  let a = Bitvec.create 8 and b = Bitvec.create 16 in
  Alcotest.check_raises "or mismatch" (Invalid_argument "Bitvec: length mismatch")
    (fun () -> ignore (Bitvec.logor a b));
  Alcotest.check_raises "subset mismatch"
    (Invalid_argument "Bitvec: length mismatch") (fun () ->
      ignore (Bitvec.subset a ~of_:b))

let test_logor_into () =
  let dst = Bitvec.of_positions 32 [ 5 ] in
  let src = Bitvec.of_positions 32 [ 7; 9 ] in
  Bitvec.logor_into ~dst src;
  Alcotest.(check (list int)) "accumulated" [ 5; 7; 9 ] (Bitvec.set_positions dst);
  Alcotest.(check (list int)) "src untouched" [ 7; 9 ] (Bitvec.set_positions src)

let test_subset_basic () =
  let small = Bitvec.of_positions 248 [ 3; 100; 200 ] in
  let big = Bitvec.of_positions 248 [ 3; 50; 100; 200; 240 ] in
  Alcotest.(check bool) "subset" true (Bitvec.subset small ~of_:big);
  Alcotest.(check bool) "not superset" false (Bitvec.subset big ~of_:small);
  Alcotest.(check bool) "self subset" true (Bitvec.subset small ~of_:small)

let test_subset_empty () =
  let empty = Bitvec.create 64 in
  let any = Bitvec.of_positions 64 [ 1 ] in
  Alcotest.(check bool) "empty subset of anything" true
    (Bitvec.subset empty ~of_:any)

let test_intersects () =
  let a = Bitvec.of_positions 100 [ 10; 20 ] in
  let b = Bitvec.of_positions 100 [ 20; 30 ] in
  let c = Bitvec.of_positions 100 [ 40 ] in
  Alcotest.(check bool) "a/b intersect" true (Bitvec.intersects a b);
  Alcotest.(check bool) "a/c disjoint" false (Bitvec.intersects a c)

let test_hex_roundtrip () =
  let rng = Rng.create 5L in
  for _ = 1 to 50 do
    let v = random_vec rng ~bits:248 ~density:0.3 in
    let back = Bitvec.of_hex 248 (Bitvec.to_hex v) in
    Alcotest.(check bool) "hex roundtrip" true (Bitvec.equal v back)
  done

let test_hex_rejects_garbage () =
  Alcotest.check_raises "bad digit" (Invalid_argument "Bitvec.of_hex: not a hex digit")
    (fun () -> ignore (Bitvec.of_hex 8 "zz"));
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Bitvec.of_hex: length mismatch") (fun () ->
      ignore (Bitvec.of_hex 16 "ff"))

let test_bytes_roundtrip () =
  let rng = Rng.create 15L in
  for _ = 1 to 50 do
    let v = random_vec rng ~bits:120 ~density:0.5 in
    let back = Bitvec.of_bytes 120 (Bitvec.to_bytes v) in
    Alcotest.(check bool) "bytes roundtrip" true (Bitvec.equal v back)
  done

let test_of_bytes_rejects_padding () =
  (* 13-bit vector = 2 bytes; bits 13..15 must be zero. *)
  let bad = Bytes.of_string "\xff\xff" in
  Alcotest.check_raises "padding set"
    (Invalid_argument "Bitvec.of_bytes: padding bits set") (fun () ->
      ignore (Bitvec.of_bytes 13 bad))

let test_copy_independent () =
  let a = Bitvec.of_positions 32 [ 1 ] in
  let b = Bitvec.copy a in
  Bitvec.set b 2;
  Alcotest.(check (list int)) "original unchanged" [ 1 ] (Bitvec.set_positions a);
  Alcotest.(check (list int)) "copy changed" [ 1; 2 ] (Bitvec.set_positions b)

let test_compare_consistent_with_equal () =
  let a = Bitvec.of_positions 64 [ 1; 2 ] in
  let b = Bitvec.of_positions 64 [ 1; 2 ] in
  let c = Bitvec.of_positions 64 [ 1; 3 ] in
  Alcotest.(check bool) "equal" true (Bitvec.equal a b);
  Alcotest.(check int) "compare equal" 0 (Bitvec.compare a b);
  Alcotest.(check bool) "hash equal" true (Bitvec.hash a = Bitvec.hash b);
  Alcotest.(check bool) "compare differs" true (Bitvec.compare a c <> 0)

let test_iter_set_ascending () =
  let v = Bitvec.of_positions 100 [ 90; 5; 33 ] in
  let seen = ref [] in
  Bitvec.iter_set v (fun i -> seen := i :: !seen);
  Alcotest.(check (list int)) "ascending order" [ 5; 33; 90 ] (List.rev !seen)

(* --- properties --- *)

let positions_gen bits =
  QCheck.Gen.(list_size (int_range 0 (bits / 2)) (int_range 0 (bits - 1)))

let vec_arb bits =
  QCheck.make
    ~print:(fun ps -> String.concat "," (List.map string_of_int ps))
    (positions_gen bits)

let prop_or_superset =
  QCheck.Test.make ~name:"a subset (a|b)" ~count:300
    (QCheck.pair (vec_arb 248) (vec_arb 248))
    (fun (pa, pb) ->
      let a = Bitvec.of_positions 248 pa and b = Bitvec.of_positions 248 pb in
      let o = Bitvec.logor a b in
      Bitvec.subset a ~of_:o && Bitvec.subset b ~of_:o)

let prop_and_subset =
  QCheck.Test.make ~name:"(a&b) subset a" ~count:300
    (QCheck.pair (vec_arb 248) (vec_arb 248))
    (fun (pa, pb) ->
      let a = Bitvec.of_positions 248 pa and b = Bitvec.of_positions 248 pb in
      let i = Bitvec.logand a b in
      Bitvec.subset i ~of_:a && Bitvec.subset i ~of_:b)

let prop_popcount_or_bounds =
  QCheck.Test.make ~name:"popcount(a|b) bounds" ~count:300
    (QCheck.pair (vec_arb 120) (vec_arb 120))
    (fun (pa, pb) ->
      let a = Bitvec.of_positions 120 pa and b = Bitvec.of_positions 120 pb in
      let o = Bitvec.popcount (Bitvec.logor a b) in
      o >= max (Bitvec.popcount a) (Bitvec.popcount b)
      && o <= Bitvec.popcount a + Bitvec.popcount b)

let prop_positions_roundtrip =
  QCheck.Test.make ~name:"set_positions/of_positions roundtrip" ~count:300
    (vec_arb 505)
    (fun ps ->
      let v = Bitvec.of_positions 505 ps in
      let v' = Bitvec.of_positions 505 (Bitvec.set_positions v) in
      Bitvec.equal v v')

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrip arbitrary width" ~count:200
    (QCheck.pair (QCheck.int_range 1 400) QCheck.small_nat)
    (fun (bits, seed) ->
      let rng = Rng.of_int seed in
      let v = random_vec rng ~bits ~density:0.4 in
      Bitvec.equal v (Bitvec.of_hex bits (Bitvec.to_hex v)))

let prop_subset_transitive =
  QCheck.Test.make ~name:"subset transitivity via or-chain" ~count:200
    (QCheck.triple (vec_arb 248) (vec_arb 248) (vec_arb 248))
    (fun (pa, pb, pc) ->
      let a = Bitvec.of_positions 248 pa in
      let ab = Bitvec.logor a (Bitvec.of_positions 248 pb) in
      let abc = Bitvec.logor ab (Bitvec.of_positions 248 pc) in
      Bitvec.subset a ~of_:abc)

(* --- model-based properties: Bitvec vs a naive bool array ---

   The fast path trusts the word-wise kernels (subset, logor, logand,
   popcount) on arbitrary — especially non-word-multiple — lengths, so
   check them against the obviously-correct per-bit model. *)

let model_of v = Array.init (Bitvec.length v) (Bitvec.get v)

let model_pair_arb =
  (* (length, positions for a, positions for b) with lengths straddling
     byte and 64-bit word boundaries: 1..130 covers 0, 1 and 2 whole
     words plus ragged tails. *)
  QCheck.make
    ~print:(fun (len, pa, pb) ->
      Printf.sprintf "len=%d a=[%s] b=[%s]" len
        (String.concat "," (List.map string_of_int pa))
        (String.concat "," (List.map string_of_int pb)))
    QCheck.Gen.(
      int_range 1 130 >>= fun len ->
      let ps = list_size (int_range 0 len) (int_range 0 (len - 1)) in
      pair ps ps >>= fun (pa, pb) -> return (len, pa, pb))

let build len ps = Bitvec.of_positions len ps

let prop_model_subset =
  QCheck.Test.make ~name:"model: subset = per-bit implication" ~count:500
    model_pair_arb
    (fun (len, pa, pb) ->
      let a = build len pa and b = build len pb in
      let ma = model_of a and mb = model_of b in
      let expected = ref true in
      Array.iteri (fun i ai -> if ai && not mb.(i) then expected := false) ma;
      Bitvec.subset a ~of_:b = !expected)

let prop_model_logor =
  QCheck.Test.make ~name:"model: logor = per-bit or" ~count:500 model_pair_arb
    (fun (len, pa, pb) ->
      let a = build len pa and b = build len pb in
      let ma = model_of a and mb = model_of b in
      model_of (Bitvec.logor a b) = Array.init len (fun i -> ma.(i) || mb.(i)))

let prop_model_logand =
  QCheck.Test.make ~name:"model: logand = per-bit and" ~count:500 model_pair_arb
    (fun (len, pa, pb) ->
      let a = build len pa and b = build len pb in
      let ma = model_of a and mb = model_of b in
      model_of (Bitvec.logand a b) = Array.init len (fun i -> ma.(i) && mb.(i)))

let prop_model_logor_into =
  QCheck.Test.make ~name:"model: logor_into mutates dst only" ~count:500
    model_pair_arb
    (fun (len, pa, pb) ->
      let dst = build len pa and src = build len pb in
      let ma = model_of dst and mb = model_of src in
      Bitvec.logor_into ~dst src;
      model_of dst = Array.init len (fun i -> ma.(i) || mb.(i))
      && model_of src = mb)

let prop_model_popcount_fill =
  QCheck.Test.make ~name:"model: popcount and fill_ratio" ~count:500
    model_pair_arb
    (fun (len, pa, _) ->
      let a = build len pa in
      let expected = Array.fold_left (fun n b -> if b then n + 1 else n) 0 (model_of a) in
      Bitvec.popcount a = expected
      && Bitvec.fill_ratio a = float_of_int expected /. float_of_int len)

let prop_model_blit_into =
  QCheck.Test.make ~name:"model: blit_into copies the backing bytes" ~count:300
    model_pair_arb
    (fun (len, pa, _) ->
      let a = build len pa in
      let bytes_len = (len + 7) / 8 in
      let dst = Bytes.make (bytes_len + 16) '\xff' in
      Bitvec.blit_into a dst ~pos:8;
      Bytes.equal (Bytes.sub dst 8 bytes_len) (Bitvec.to_bytes a)
      && Bytes.get dst 0 = '\xff'
      && Bytes.get dst (bytes_len + 8) = '\xff')

let () =
  Alcotest.run "bitvec"
    [
      ( "basics",
        [
          Alcotest.test_case "create zeroed" `Quick test_create_zeroed;
          Alcotest.test_case "create rejects" `Quick test_create_rejects_nonpositive;
          Alcotest.test_case "set/get/clear" `Quick test_set_get_clear;
          Alcotest.test_case "index bounds" `Quick test_index_bounds;
          Alcotest.test_case "set_all" `Quick test_set_all_respects_length;
          Alcotest.test_case "reset" `Quick test_reset;
          Alcotest.test_case "copy independent" `Quick test_copy_independent;
          Alcotest.test_case "iter_set ascending" `Quick test_iter_set_ascending;
        ] );
      ( "algebra",
        [
          Alcotest.test_case "or/and" `Quick test_logor_logand;
          Alcotest.test_case "length mismatch" `Quick test_length_mismatch;
          Alcotest.test_case "logor_into" `Quick test_logor_into;
          Alcotest.test_case "subset" `Quick test_subset_basic;
          Alcotest.test_case "empty subset" `Quick test_subset_empty;
          Alcotest.test_case "intersects" `Quick test_intersects;
          Alcotest.test_case "compare/equal/hash" `Quick
            test_compare_consistent_with_equal;
          QCheck_alcotest.to_alcotest prop_or_superset;
          QCheck_alcotest.to_alcotest prop_and_subset;
          QCheck_alcotest.to_alcotest prop_popcount_or_bounds;
          QCheck_alcotest.to_alcotest prop_subset_transitive;
        ] );
      ( "serialization",
        [
          Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
          Alcotest.test_case "hex rejects" `Quick test_hex_rejects_garbage;
          Alcotest.test_case "bytes roundtrip" `Quick test_bytes_roundtrip;
          Alcotest.test_case "bytes padding" `Quick test_of_bytes_rejects_padding;
          QCheck_alcotest.to_alcotest prop_positions_roundtrip;
          QCheck_alcotest.to_alcotest prop_hex_roundtrip;
        ] );
      ( "model",
        [
          QCheck_alcotest.to_alcotest prop_model_subset;
          QCheck_alcotest.to_alcotest prop_model_logor;
          QCheck_alcotest.to_alcotest prop_model_logand;
          QCheck_alcotest.to_alcotest prop_model_logor_into;
          QCheck_alcotest.to_alcotest prop_model_popcount_fill;
          QCheck_alcotest.to_alcotest prop_model_blit_into;
        ] );
    ]
