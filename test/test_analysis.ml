(* The static-analysis subsystem: lint rules (trigger + suppression
   fixtures for each), the driver's suppression/parse-error handling,
   the dune dependency graph, and the fastpath blob auditor — including
   the qcheck mutation properties: Audit accepts every Fastpath.compile
   output and flags every single-byte blob corruption. *)

module Lint = Lipsin_linter.Lint
module Rules = Lipsin_linter.Rules
module Finding = Lipsin_linter.Finding
module Deps = Lipsin_linter.Deps
module Audit = Lipsin_analysis.Audit
module Bitvec = Lipsin_bitvec.Bitvec
module Lit = Lipsin_bloom.Lit
module Zfilter = Lipsin_bloom.Zfilter
module Graph = Lipsin_topology.Graph
module Generator = Lipsin_topology.Generator
module Assignment = Lipsin_core.Assignment
module Node_engine = Lipsin_forwarding.Node_engine
module Fastpath = Lipsin_forwarding.Fastpath
module Net = Lipsin_sim.Net
module Run = Lipsin_sim.Run
module Rng = Lipsin_util.Rng

(* ---- lint fixtures -------------------------------------------------- *)

let count rule findings =
  List.length (List.filter (fun f -> String.equal f.Finding.rule rule) findings)

(* Fixture files: every lib/ .ml gets a matching .mli entry so the
   mli-coverage rule stays quiet unless a test targets it. *)
let with_mli path src rest = (path, src) :: (path ^ "i", "") :: rest

let check_rule_count name expected files =
  Alcotest.(check int) name expected (count name (Lint.run ~files ()))

let poly_compare_fixtures () =
  (* Structural equality on an annotated Bitvec.t operand. *)
  check_rule_count "no-poly-compare" 1
    (with_mli "lib/fix/eq.ml" "let f a b = (a : Bitvec.t) = b" []);
  (* Stdlib.compare in a bearing module (mention via comment). *)
  check_rule_count "no-poly-compare" 1
    (with_mli "lib/fix/cmp.ml"
       "(* touches Bitvec. tags *)\nlet f x y = Stdlib.compare x y" []);
  (* Hashtbl.hash in a bearing module. *)
  check_rule_count "no-poly-compare" 1
    (with_mli "lib/fix/hash.ml" "(* Bitvec. *)\nlet h v = Hashtbl.hash v" []);
  (* Bare compare resolves to Stdlib's polymorphic one. *)
  check_rule_count "no-poly-compare" 1
    (with_mli "lib/fix/bare.ml" "(* Bitvec. *)\nlet s l = List.sort compare l" []);
  (* ... unless the module defines its own compare. *)
  check_rule_count "no-poly-compare" 0
    (with_mli "lib/fix/own.ml"
       "(* Bitvec. *)\nlet compare a b = Int.compare a b\nlet s l = List.sort compare l"
       []);
  (* Equality on a Zfilter-returning application. *)
  check_rule_count "no-poly-compare" 1
    (with_mli "lib/fix/zf.ml" "let f z b = Zfilter.to_bitvec z = b" []);
  (* A non-bearing module may use polymorphic compare freely. *)
  check_rule_count "no-poly-compare" 0
    (with_mli "lib/fix/plain.ml" "let s l = List.sort compare l" []);
  (* Typed comparators pass in bearing modules. *)
  check_rule_count "no-poly-compare" 0
    (with_mli "lib/fix/typed.ml" "(* Bitvec. *)\nlet s l = List.sort Int.compare l" []);
  (* Per-file suppression. *)
  check_rule_count "no-poly-compare" 0
    (with_mli "lib/fix/sup.ml"
       "(* lint: allow no-poly-compare — fixture justification *)\n\
        (* Bitvec. *)\n\
        let f x y = Stdlib.compare x y"
       [])

let sim_dune =
  [
    ("lib/sim/dune", "(library (name lipsin_sim) (libraries lipsin_foo))");
    ("lib/sim/parallel.ml", "let shards = 4");
    ("lib/sim/parallel.mli", "val shards : int");
    ("lib/foo/dune", "(library (name lipsin_foo))");
    ("lib/bar/dune", "(library (name lipsin_bar) (libraries lipsin_foo))");
  ]

let domain_safety_fixtures () =
  (* Top-level Hashtbl in a library reachable from lipsin_sim. *)
  check_rule_count "domain-safety" 1
    (with_mli "lib/foo/cache.ml" "let cache = Hashtbl.create 8" sim_dune);
  (* A ref at the top level. *)
  check_rule_count "domain-safety" 1
    (with_mli "lib/foo/counter.ml" "let hits = ref 0" sim_dune);
  (* The same state in an unreachable library is fine. *)
  check_rule_count "domain-safety" 0
    (with_mli "lib/bar/cache.ml" "let cache = Hashtbl.create 8" sim_dune);
  (* Allocation deferred behind a function is per-call, fine. *)
  check_rule_count "domain-safety" 0
    (with_mli "lib/foo/makers.ml" "let make () = Hashtbl.create 8" sim_dune);
  (* Mutex-guarded bindings pass. *)
  check_rule_count "domain-safety" 0
    (with_mli "lib/foo/guarded.ml"
       "let table = (Mutex.create (), Hashtbl.create 8)" sim_dune);
  (* Global Random state anywhere in a reachable module. *)
  check_rule_count "domain-safety" 1
    (with_mli "lib/foo/dice.ml" "let roll () = Random.int 6" sim_dune);
  (* Explicit Random.State is exempt. *)
  check_rule_count "domain-safety" 0
    (with_mli "lib/foo/seeded.ml" "let roll s = Random.State.int s 6" sim_dune);
  (* Nested module structures are still module initialization. *)
  check_rule_count "domain-safety" 1
    (with_mli "lib/foo/nested.ml" "module Inner = struct let buf = Buffer.create 64 end"
       sim_dune);
  (* Obs telemetry cells are sanctioned mutable state (per-domain,
     aggregated on read), so a binding that wires eager state to an Obs
     cell passes... *)
  check_rule_count "domain-safety" 0
    (with_mli "lib/foo/metered.ml"
       "let meter = (Obs.Counter.local decisions, Hashtbl.create 8)" sim_dune);
  check_rule_count "domain-safety" 0
    (with_mli "lib/foo/metered2.ml"
       "let hits = (ref 0, Lipsin_obs.Obs.Counter.make \"foo_hits_total\")"
       sim_dune);
  (* ...but an unguarded scratch ref with no such mention is still
     flagged. *)
  check_rule_count "domain-safety" 1
    (with_mli "lib/foo/scratch.ml" "let scratch = ref []" sim_dune);
  (* Suppression. *)
  check_rule_count "domain-safety" 0
    (with_mli "lib/foo/sup.ml"
       "(* lint: allow domain-safety — fixture justification *)\n\
        let cache = Hashtbl.create 8"
       sim_dune)

let debug_io_fixtures () =
  check_rule_count "no-debug-io" 1
    (with_mli "lib/fix/noisy.ml" "let f x = Printf.printf \"%d\" x" []);
  check_rule_count "no-debug-io" 1
    (with_mli "lib/fix/loud.ml" "let f () = print_endline \"hi\"" []);
  (* Executables may print. *)
  check_rule_count "no-debug-io" 0 [ ("bin/tool.ml", "let () = print_endline \"hi\"") ];
  (* Formatter-taking printers are the sanctioned alternative. *)
  check_rule_count "no-debug-io" 0
    (with_mli "lib/fix/fmt.ml" "let pp ppf x = Format.fprintf ppf \"%d\" x" []);
  check_rule_count "no-debug-io" 0
    (with_mli "lib/fix/sup.ml"
       "(* lint: allow no-debug-io — fixture justification *)\n\
        let f () = print_endline \"hi\""
       [])

let mli_coverage_fixtures () =
  check_rule_count "mli-coverage" 1 [ ("lib/fix/naked.ml", "let x = 1") ];
  check_rule_count "mli-coverage" 0
    [ ("lib/fix/dressed.ml", "let x = 1"); ("lib/fix/dressed.mli", "val x : int") ];
  (* bin/bench/test modules need no interface. *)
  check_rule_count "mli-coverage" 0 [ ("bin/tool.ml", "let x = 1") ];
  check_rule_count "mli-coverage" 0
    [ ("lib/fix/sup.ml", "(* lint: allow mli-coverage — umbrella alias module *)\nlet x = 1") ]

let parse_error_fixture () =
  let findings = Lint.run ~files:(with_mli "lib/fix/bad.ml" "let = (" []) () in
  Alcotest.(check int) "parse-error reported" 1 (count "parse-error" findings);
  Alcotest.(check int) "nothing else reported"
    (List.length findings)
    (count "parse-error" findings)

let suppression_parsing () =
  Alcotest.(check (list string))
    "both rules parsed"
    [ "no-debug-io"; "mli-coverage" ]
    (Lint.suppressions
       "(* lint: allow no-debug-io — tables print by design *)\n\
        code here\n\
        (* lint: allow mli-coverage *)");
  Alcotest.(check (list string)) "no marker" [] (Lint.suppressions "let x = 1")

let dep_graph () =
  let libs =
    Deps.libraries_of_files
      [
        ("lib/sim/dune", "(library (name lipsin_sim) (libraries a b))");
        ("lib/a/dune", "; comment\n(library (name a) (libraries c))");
        ("lib/c/dune", "(library (name c))");
        ("lib/d/dune", "(library (name d) (libraries c))");
      ]
  in
  Alcotest.(check int) "four stanzas" 4 (List.length libs);
  let dirs = List.sort String.compare (Deps.reachable_dirs libs ~root:"lipsin_sim") in
  Alcotest.(check (list string))
    "closure of lipsin_sim" [ "lib/a"; "lib/c"; "lib/sim" ] dirs;
  Alcotest.(check (list string)) "unknown root" [] (Deps.reachable_dirs libs ~root:"x");
  match Deps.owner libs "lib/a/thing.ml" with
  | Some l -> Alcotest.(check string) "owner by dir" "a" l.Deps.lib_name
  | None -> Alcotest.fail "owner not found"

let report_shapes () =
  let f = Finding.make ~file:"lib/x.ml" ~line:3 ~col:7 ~rule:"no-debug-io" "msg \"q\"" in
  Alcotest.(check string)
    "human line" "lib/x.ml:3:7: [no-debug-io] msg \"q\"" (Finding.to_human f);
  let json = Finding.report_json [ f ] in
  Alcotest.(check bool) "json has count" true
    (let sub = "\"count\": 1" in
     let n = String.length json and m = String.length sub in
     let rec at i = i + m <= n && (String.equal (String.sub json i m) sub || at (i + 1)) in
     at 0)

(* ---- the blob auditor ---------------------------------------------- *)

(* A random compiled engine: random topology, width, table count,
   failed links, virtual links, blocks and services — the same state
   space the differential fastpath suite explores. *)
let build_fast seed =
  let rng = Rng.of_int seed in
  let nodes = 4 + Rng.int rng 12 in
  let extra = Rng.int rng (max 1 (nodes / 2)) in
  let graph =
    Generator.pref_attach ~rng ~nodes ~edges:(nodes - 1 + extra) ~max_degree:8 ()
  in
  let m = [| 61; 64; 120; 248 |].(Rng.int rng 4) in
  let d = 1 + Rng.int rng 4 in
  let k = 3 + Rng.int rng 3 in
  let params = Lit.constant_k ~m ~d ~k in
  let asg = Assignment.make params (Rng.split rng) graph in
  let node = Rng.int rng (Graph.node_count graph) in
  let engine = Node_engine.create asg node in
  let out = Array.of_list (Graph.out_links graph node) in
  Array.iter
    (fun l -> if Rng.float rng 1.0 < 0.25 then Node_engine.fail_link engine l)
    out;
  for _ = 1 to Rng.int rng 3 do
    let vlit = Lit.fresh params (Rng.split rng) in
    let out_links = List.filter (fun _ -> Rng.bool rng) (Array.to_list out) in
    Node_engine.install_virtual engine vlit ~out_links
  done;
  if Array.length out > 0 then
    for _ = 1 to Rng.int rng 3 do
      let victim = out.(Rng.int rng (Array.length out)) in
      if Rng.bool rng then
        Node_engine.install_block engine victim (Lit.fresh params (Rng.split rng))
      else begin
        let table = Rng.int rng d in
        let donor = Graph.link graph (Rng.int rng (Graph.link_count graph)) in
        Node_engine.install_block_pattern engine victim ~table
          (Assignment.tag asg donor ~table)
      end
    done;
  for i = 1 to Rng.int rng 3 do
    Node_engine.install_service engine
      (Lit.fresh params (Rng.split rng))
      ~name:(Printf.sprintf "svc%d" i)
  done;
  (Fastpath.compile engine, rng)

let all_blobs fp =
  let v = Fastpath.view fp in
  List.filter
    (fun b -> Bytes.length b > 0)
    (List.concat
       [
         Array.to_list v.Fastpath.view_phys;
         Array.to_list v.Fastpath.view_in_tags;
         Array.to_list v.Fastpath.view_blocks;
         Array.to_list v.Fastpath.view_virt;
         Array.to_list v.Fastpath.view_local;
         Array.to_list v.Fastpath.view_svc;
       ])

let flip_random_byte rng blob =
  let pos = Rng.int rng (Bytes.length blob) in
  let delta = 1 + Rng.int rng 255 in
  Bytes.set blob pos (Char.chr (Char.code (Bytes.get blob pos) lxor delta))

let audit_unit () =
  let fp, _ = build_fast 42 in
  Alcotest.(check (list string)) "fresh compile is clean" []
    (List.map Audit.to_string (Audit.audit fp));
  (* The kill bit is part of the audited surface: clearing a down
     port's (or setting an up port's) kill bit is caught structurally,
     without the digest. *)
  let v = Fastpath.view fp in
  let m = v.Fastpath.view_m in
  let blob = v.Fastpath.view_phys.(0) in
  let pos = m lsr 3 in
  Bytes.set blob pos (Char.chr (Char.code (Bytes.get blob pos) lxor (1 lsl (m land 7))));
  Alcotest.(check bool) "kill-bit flip caught structurally" false
    (Audit.audit_ok ~check_digest:false fp);
  Alcotest.(check bool) "and by the digest" false (Audit.audit_ok fp)

let audit_local_popcount () =
  let fp, _ = build_fast 7 in
  (* Clearing one live bit of the local LIT breaks popcount = k. *)
  let v = Fastpath.view fp in
  let blob = v.Fastpath.view_local.(0) in
  let byte = ref 0 in
  (try
     for i = 0 to Bytes.length blob - 1 do
       if Char.code (Bytes.get blob i) <> 0 then begin
         byte := i;
         raise Exit
       end
     done
   with Exit -> ());
  let b = Char.code (Bytes.get blob !byte) in
  Bytes.set blob !byte (Char.chr (b land (b - 1)));
  let checks = List.map (fun viol -> viol.Audit.check) (Audit.audit ~check_digest:false fp) in
  Alcotest.(check bool) "popcount violation raised" true
    (List.mem "popcount" checks)

let audit_env_hook () =
  Unix.putenv "LIPSIN_FASTPATH_AUDIT" "1";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "LIPSIN_FASTPATH_AUDIT" "")
    (fun () ->
      let rng = Rng.of_int 11 in
      let graph = Generator.pref_attach ~rng ~nodes:8 ~edges:10 ~max_degree:4 () in
      let params = Lit.constant_k ~m:64 ~d:2 ~k:4 in
      let asg = Assignment.make params (Rng.split rng) graph in
      let net = Net.make asg in
      (* Forces a compile through Net.fastpath's audit gate. *)
      ignore (Net.fastpath net 0);
      let tree = [] in
      let z = Zfilter.create ~m:64 in
      let o = Run.deliver ~engine:`Fast net ~src:0 ~table:0 ~zfilter:z ~tree in
      Alcotest.(check bool) "delivery ran under the audit gate" true
        (o.Run.link_traversals >= 0))

let prop_audit_accepts_compiles =
  QCheck.Test.make ~name:"audit accepts every Fastpath.compile output" ~count:250
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let fp, _ = build_fast seed in
      match Audit.audit fp with
      | [] -> true
      | v :: _ -> QCheck.Test.fail_report (Audit.to_string v))

let prop_audit_rejects_corruption =
  QCheck.Test.make ~name:"audit flags any single-byte blob corruption" ~count:300
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let fp, rng = build_fast seed in
      match all_blobs fp with
      | [] -> true
      | blobs ->
        flip_random_byte rng (List.nth blobs (Rng.int rng (List.length blobs)));
        not (Audit.audit_ok fp))

let prop_structural_catches_phys =
  (* For physical entries every single-BIT flip is covered by a
     structural invariant — a live bit breaks popcount = k, a padding
     bit breaks the zero-padding check, bit m breaks kill-bit placement
     — so even without the digest it cannot hide.  (Multi-bit byte
     corruption that preserves popcount needs the digest.) *)
  QCheck.Test.make
    ~name:"structural checks alone catch single-bit phys corruption" ~count:200
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let fp, rng = build_fast seed in
      let v = Fastpath.view fp in
      let tbl = Rng.int rng v.Fastpath.view_d in
      let blob = v.Fastpath.view_phys.(tbl) in
      if Bytes.length blob = 0 then true
      else begin
        let pos = Rng.int rng (Bytes.length blob) in
        let bit = Rng.int rng 8 in
        Bytes.set blob pos
          (Char.chr (Char.code (Bytes.get blob pos) lxor (1 lsl bit)));
        not (Audit.audit_ok ~check_digest:false fp)
      end)

let () =
  Alcotest.run "analysis"
    [
      ( "lint",
        [
          Alcotest.test_case "no-poly-compare fixtures" `Quick poly_compare_fixtures;
          Alcotest.test_case "domain-safety fixtures" `Quick domain_safety_fixtures;
          Alcotest.test_case "no-debug-io fixtures" `Quick debug_io_fixtures;
          Alcotest.test_case "mli-coverage fixtures" `Quick mli_coverage_fixtures;
          Alcotest.test_case "parse errors surface as findings" `Quick
            parse_error_fixture;
          Alcotest.test_case "suppression comment parsing" `Quick suppression_parsing;
          Alcotest.test_case "dune dependency graph" `Quick dep_graph;
          Alcotest.test_case "report formats" `Quick report_shapes;
        ] );
      ( "audit",
        [
          Alcotest.test_case "clean compile, corrupted kill bit" `Quick audit_unit;
          Alcotest.test_case "local LIT popcount" `Quick audit_local_popcount;
          Alcotest.test_case "Net audit gate (env hook)" `Quick audit_env_hook;
          QCheck_alcotest.to_alcotest prop_audit_accepts_compiles;
          QCheck_alcotest.to_alcotest prop_audit_rejects_corruption;
          QCheck_alcotest.to_alcotest prop_structural_catches_phys;
        ] );
    ]
