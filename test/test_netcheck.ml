(* Tests for Lipsin_analysis.Netcheck — the whole-deployment static
   verifier — and its Net.verify / LIPSIN_NETCHECK surfaces.

   The mutation properties mirror test_analysis's audit byte-flip
   suite: clean deployments over tree topologies must verify loop-free
   (a doubled tree admits no non-backtracking closed walk, so this is
   exact, not statistical), and injecting a cycle whose OR'd LITs
   self-admit must be flagged. *)

module Netcheck = Lipsin_analysis.Netcheck
module Assignment = Lipsin_core.Assignment
module Candidate = Lipsin_core.Candidate
module Persist = Lipsin_core.Persist
module Graph = Lipsin_topology.Graph
module Generator = Lipsin_topology.Generator
module Spt = Lipsin_topology.Spt
module Lit = Lipsin_bloom.Lit
module Zfilter = Lipsin_bloom.Zfilter
module Bitvec = Lipsin_bitvec.Bitvec
module Node_engine = Lipsin_forwarding.Node_engine
module Recovery = Lipsin_forwarding.Recovery
module Net = Lipsin_sim.Net
module Run = Lipsin_sim.Run
module Rng = Lipsin_util.Rng

let default_params = Lit.default

let tree_graph ~seed ~nodes =
  (* edges = nodes - 1 forces a spanning tree: the only cycles in the
     doubled digraph are 2-link ping-pongs, which the closure's SCC
     analysis treats as cycles — so zFilters built from one-directed
     tree links can never loop. *)
  Generator.pref_attach ~rng:(Rng.of_int seed) ~nodes ~edges:(nodes - 1)
    ~max_degree:6 ()

let assignment_of ?(params = default_params) ~seed g =
  Assignment.make params (Rng.of_int (seed + 1)) g

let find_link g u v =
  match Graph.find_link g ~src:u ~dst:v with
  | Some l -> l
  | None -> Alcotest.failf "no link %d->%d" u v

let has_check name findings =
  List.exists (fun f -> String.equal f.Netcheck.check name) findings

let checks_of findings =
  List.sort_uniq String.compare (List.map (fun f -> f.Netcheck.check) findings)

(* ---- per-zFilter verification ---- *)

let test_clean_tree_no_findings () =
  let g = tree_graph ~seed:42 ~nodes:16 in
  let asg = assignment_of ~seed:42 g in
  let model = Netcheck.model_of_assignment asg in
  let tree = Spt.delivery_tree g ~root:0 ~subscribers:[ 5; 9; 15 ] in
  let findings = Netcheck.check_tree model ~src:0 ~tree in
  Alcotest.(check (list string)) "no findings on a tree deployment" []
    (List.map Netcheck.to_string findings);
  (* deployment-wide: a tree topology has no (>=3-link) cycles and no
     LIT anomalies at m=248; bridges are expected (every tree link is
     one) but never errors *)
  Alcotest.(check int) "no deployment errors" 0
    (List.length (Netcheck.errors (Netcheck.check_deployment model)))

let test_injected_ring_cycle_flagged () =
  (* Pure ring: tree path 0->1->2 plus the remaining ring links ORed in
     form the full directed 6-cycle; every ring node has exactly one
     in-link in the closure, so the incoming-LIT check never fires:
     severity must be Error and the reported cycle must be exactly the
     injected one. *)
  let g = Generator.ring ~nodes:6 in
  let asg = assignment_of ~seed:7 g in
  let model = Netcheck.model_of_assignment asg in
  let ring = List.init 6 (fun i -> find_link g i ((i + 1) mod 6)) in
  let tree = Spt.delivery_tree g ~root:0 ~subscribers:[ 2 ] in
  let table = 0 in
  let z =
    Zfilter.of_tags ~m:default_params.Lit.m
      (List.map (fun l -> Assignment.tag asg l ~table) (tree @ ring))
  in
  let findings = Netcheck.check_zfilter model ~table ~zfilter:z ~src:0 ~tree in
  let loops =
    List.filter (fun f -> String.equal f.Netcheck.check "loop") findings
  in
  Alcotest.(check int) "exactly one loop" 1 (List.length loops);
  let loop = List.hd loops in
  Alcotest.(check bool) "uncatchable ring is an error" true
    (match loop.Netcheck.severity with Netcheck.Error -> true | _ -> false);
  Alcotest.(check (list int)) "reported cycle is the injected ring"
    (List.sort Int.compare (List.map (fun l -> l.Graph.index) ring))
    (List.sort Int.compare loop.Netcheck.links)

let test_chorded_ring_cycle_catchable () =
  (* Add a chord: node 0 gains a third in-link (3->0), so a packet
     looping on the ring can arrive at 0 over two distinct links and
     the incoming-LIT check catches it -> Warning, not Error. *)
  let g = Graph.create ~nodes:6 in
  for i = 0 to 5 do
    Graph.add_edge g i ((i + 1) mod 6)
  done;
  Graph.add_edge g 0 3;
  let asg = assignment_of ~seed:8 g in
  let model = Netcheck.model_of_assignment asg in
  let ring = List.init 6 (fun i -> find_link g i ((i + 1) mod 6)) in
  let chord = find_link g 3 0 in
  let table = 0 in
  let z =
    Zfilter.of_tags ~m:default_params.Lit.m
      (List.map (fun l -> Assignment.tag asg l ~table) (chord :: ring))
  in
  let findings =
    Netcheck.check_zfilter model ~table ~zfilter:z ~src:0 ~tree:(chord :: ring)
  in
  let loops =
    List.filter (fun f -> String.equal f.Netcheck.check "loop") findings
  in
  Alcotest.(check bool) "loop reported" true (loops <> []);
  List.iter
    (fun f ->
      Alcotest.(check bool) "catchable cycle is a warning" true
        (match f.Netcheck.severity with Netcheck.Warning -> true | _ -> false))
    loops

let test_ping_pong_matches_engine () =
  (* Both directions of one edge in a zFilter: the model predicts a
     2-link loop (the engine has no reverse-interface suppression) —
     confirm against the real engine with TTL-mode delivery. *)
  let g = tree_graph ~seed:3 ~nodes:5 in
  let asg = assignment_of ~seed:3 g in
  let model = Netcheck.model_of_assignment ~loop_prevention:false asg in
  let l = List.hd (Graph.out_links g 0) in
  let r = Graph.reverse_link g l in
  let table = 0 in
  let z =
    Zfilter.of_tags ~m:default_params.Lit.m
      [ Assignment.tag asg l ~table; Assignment.tag asg r ~table ]
  in
  let findings =
    Netcheck.check_zfilter model ~table ~zfilter:z ~src:0 ~tree:[ l; r ]
  in
  Alcotest.(check bool) "model reports the 2-cycle as an error" true
    (List.exists
       (fun f ->
         String.equal f.Netcheck.check "loop"
         && match f.Netcheck.severity with Netcheck.Error -> true | _ -> false)
       findings);
  (* ground truth: the packet really bounces (traversals exceed the
     two encoded links by a wide margin before TTL stops it) *)
  let net = Net.make ~loop_prevention:false asg in
  let result =
    Run.deliver ~mode:(Run.Ttl 12) net ~src:0 ~table ~zfilter:z
      ~tree:[ l; r ]
  in
  Alcotest.(check bool) "engine really ping-pongs" true
    (result.Run.link_traversals > 4)

let test_fill_limit_violation () =
  let g = tree_graph ~seed:11 ~nodes:12 in
  let asg = assignment_of ~seed:11 g in
  let model = Netcheck.model_of_assignment ~fill_limit:0.05 asg in
  let tree = Spt.delivery_tree g ~root:0 ~subscribers:[ 11; 7; 3 ] in
  let c = Candidate.build_one asg ~tree ~table:0 in
  let findings =
    Netcheck.check_zfilter model ~table:0 ~zfilter:c.Candidate.zfilter ~src:0
      ~tree
  in
  Alcotest.(check (list string)) "only the fill violation" [ "fill-limit" ]
    (checks_of findings);
  Alcotest.(check int) "and it is an error" 1
    (List.length (Netcheck.errors findings))

let test_false_delivery_attribution () =
  (* OR one off-tree link's LIT into the filter: the closure must pick
     it up and attribute the false delivery to exactly that link. *)
  let g = tree_graph ~seed:19 ~nodes:16 in
  let asg = assignment_of ~seed:19 g in
  let model = Netcheck.model_of_assignment asg in
  let tree = Spt.delivery_tree g ~root:0 ~subscribers:[ 15 ] in
  let on_tree = List.map (fun l -> l.Graph.index) tree in
  let tree_nodes = Spt.tree_nodes tree in
  (* an off-tree out-link of a tree node *)
  let extra =
    List.find_map
      (fun v ->
        List.find_opt
          (fun l -> not (List.mem l.Graph.index on_tree))
          (Graph.out_links g v))
      tree_nodes
    |> Option.get
  in
  let table = 0 in
  let z =
    Zfilter.of_tags ~m:default_params.Lit.m
      (List.map (fun l -> Assignment.tag asg l ~table) (extra :: tree))
  in
  let findings = Netcheck.check_zfilter model ~table ~zfilter:z ~src:0 ~tree in
  let fps =
    List.filter
      (fun f -> String.equal f.Netcheck.check "false-delivery")
      findings
  in
  Alcotest.(check bool) "extra link attributed" true
    (List.exists (fun f -> f.Netcheck.links = [ extra.Graph.index ]) fps);
  Alcotest.(check bool) "no under-delivery" true
    (not (has_check "under-delivery" findings));
  Alcotest.(check int) "no errors" 0 (List.length (Netcheck.errors findings))

let test_under_delivery_on_failed_link () =
  (* Fail a tree link at its source engine: the snapshot model must
     report the subscribers behind it as outside the closure. *)
  let g = tree_graph ~seed:23 ~nodes:10 in
  let asg = assignment_of ~seed:23 g in
  let engines = Hashtbl.create 10 in
  let engine_of v =
    match Hashtbl.find_opt engines v with
    | Some e -> e
    | None ->
      let e = Node_engine.create asg v in
      Hashtbl.add engines v e;
      e
  in
  let tree = Spt.delivery_tree g ~root:0 ~subscribers:[ 9 ] in
  let last = List.nth tree (List.length tree - 1) in
  Node_engine.fail_link (engine_of last.Graph.src) last;
  let model = Netcheck.model_of_engines asg ~engine_of in
  let c = Candidate.build_one asg ~tree ~table:0 in
  let findings =
    Netcheck.check_zfilter model ~table:0 ~zfilter:c.Candidate.zfilter ~src:0
      ~tree
  in
  let under =
    List.filter
      (fun f -> String.equal f.Netcheck.check "under-delivery")
      findings
  in
  Alcotest.(check int) "one under-delivery error" 1 (List.length under);
  Alcotest.(check bool) "dead tree link listed" true
    (List.mem last.Graph.index (List.hd under).Netcheck.links)

(* ---- LIT anomalies ---- *)

let test_duplicate_nonce_collision () =
  let g = Graph.create ~nodes:3 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 0 2;
  let l01 = find_link g 0 1 and l02 = find_link g 0 2 in
  let base = Assignment.make default_params (Rng.of_int 5) g in
  let nonces = Assignment.nonces base in
  nonces.(l02.Graph.index) <- nonces.(l01.Graph.index);
  let asg = Assignment.make_with_nonces default_params nonces g in
  let model = Netcheck.model_of_assignment asg in
  let findings = Netcheck.check_lits model in
  Alcotest.(check bool) "nonce duplicate flagged" true
    (has_check "nonce-duplicate" findings);
  Alcotest.(check bool) "sibling collision flagged" true
    (List.exists
       (fun f ->
         String.equal f.Netcheck.check "lit-collision"
         && f.Netcheck.node = 0
         && List.sort Int.compare f.Netcheck.links
            = List.sort Int.compare [ l01.Graph.index; l02.Graph.index ])
       findings);
  Alcotest.(check bool) "collisions are errors" true
    (Netcheck.errors findings <> [])

let test_lit_union_cover_detected () =
  (* With constant k every same-table sibling LIT has exactly k set
     bits, so a strict subset among physical siblings is impossible
     (subset <=> equal, reported as lit-collision); the observable
     containment anomaly is the union cover.  Small m so covers occur;
     the Rng is deterministic, so scan seeds until one shows up and
     check the reported link is semantically covered. *)
  let params = Lit.constant_k ~m:16 ~d:1 ~k:2 in
  let g = Graph.create ~nodes:9 in
  for v = 1 to 8 do
    Graph.add_edge g 0 v
  done;
  let found = ref None in
  let seed = ref 0 in
  while Option.is_none !found && !seed < 200 do
    let asg = Assignment.make params (Rng.of_int !seed) g in
    let model = Netcheck.model_of_assignment asg in
    let findings = Netcheck.check_lits model in
    (match
       List.find_opt
         (fun f -> String.equal f.Netcheck.check "lit-union-cover")
         findings
     with
    | Some f -> found := Some (asg, f)
    | None -> ());
    incr seed
  done;
  match !found with
  | None -> Alcotest.fail "no lit-union-cover in 200 seeds at m=16,k=2"
  | Some (asg, f) -> (
    match f.Netcheck.links with
    | [ li ] ->
      let g = Assignment.graph asg in
      let union = Bitvec.create 16 in
      List.iter
        (fun s ->
          if s.Graph.index <> li then
            Bitvec.logor_into ~dst:union
              (Assignment.tag asg s ~table:f.Netcheck.table))
        (Graph.out_links g f.Netcheck.node);
      Alcotest.(check bool) "covered LIT is inside the sibling OR" true
        (Bitvec.subset
           (Assignment.tag asg (Graph.link g li) ~table:f.Netcheck.table)
           ~of_:union)
    | _ -> Alcotest.fail "union-cover finding must carry the covered link")

let test_virtual_shadow_detected () =
  let g = tree_graph ~seed:31 ~nodes:6 in
  let asg = assignment_of ~seed:31 g in
  let engines = Hashtbl.create 6 in
  let engine_of v =
    match Hashtbl.find_opt engines v with
    | Some e -> e
    | None ->
      let e = Node_engine.create asg v in
      Hashtbl.add engines v e;
      e
  in
  (* a virtual entry carrying a physical sibling's own identity shadows
     it exactly (equal tags, subset both ways) *)
  let l = List.hd (Graph.out_links g 0) in
  Node_engine.install_virtual (engine_of 0) (Assignment.lit asg l)
    ~out_links:[ l ];
  let model = Netcheck.model_of_engines asg ~engine_of in
  let findings = Netcheck.check_lits model in
  Alcotest.(check bool) "shadow flagged at node 0" true
    (List.exists
       (fun f ->
         String.equal f.Netcheck.check "virtual-shadow" && f.Netcheck.node = 0)
       findings)

(* ---- deployment-wide loop admissibility ---- *)

let test_deployment_loops_prevention_severity () =
  (* An admissible cycle witness is inherent to any cyclic deployment,
     so it must not be a gate-tripping Error while the incoming-LIT
     check is armed — only when loop prevention is disabled does the
     finding escalate (nothing but the TTL stops the packet). *)
  let ring = Generator.ring ~nodes:6 in
  let asg = assignment_of ~seed:41 ring in
  let loops model =
    List.filter
      (fun f -> String.equal f.Netcheck.check "loop-admissible")
      (Netcheck.check_loops model)
  in
  let armed = loops (Netcheck.model_of_assignment asg) in
  Alcotest.(check bool) "pure ring admits loops" true (armed <> []);
  List.iter
    (fun f ->
      Alcotest.(check bool) "armed prevention reports warnings" true
        (match f.Netcheck.severity with Netcheck.Warning -> true | _ -> false))
    armed;
  let off = loops (Netcheck.model_of_assignment ~loop_prevention:false asg) in
  Alcotest.(check bool) "still reported with prevention off" true (off <> []);
  List.iter
    (fun f ->
      Alcotest.(check bool) "disabled prevention escalates to errors" true
        (match f.Netcheck.severity with Netcheck.Error -> true | _ -> false))
    off

(* ---- recovery soundness ---- *)

let two_triangles_with_bridge () =
  let g = Graph.create ~nodes:6 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 2;
  Graph.add_edge g 2 0;
  Graph.add_edge g 3 4;
  Graph.add_edge g 4 5;
  Graph.add_edge g 5 3;
  Graph.add_edge g 2 3;
  g

let test_recovery_bridge_and_soundness () =
  let g = two_triangles_with_bridge () in
  let asg = assignment_of ~seed:53 g in
  let model = Netcheck.model_of_assignment asg in
  let findings = Netcheck.check_recovery model in
  let bridge_links =
    List.concat_map
      (fun f ->
        if String.equal f.Netcheck.check "recovery-bridge" then f.Netcheck.links
        else [])
      findings
  in
  let b = find_link g 2 3 and br = find_link g 3 2 in
  Alcotest.(check (list int)) "exactly the bridge, both directions"
    (List.sort Int.compare [ b.Graph.index; br.Graph.index ])
    (List.sort Int.compare bridge_links);
  Alcotest.(check bool) "triangle links verify loop-free and delivering" true
    (not
       (has_check "recovery-loop" findings
       || has_check "recovery-unreachable" findings));
  Alcotest.(check int) "no errors" 0 (List.length (Netcheck.errors findings))

let test_recovery_fill_headroom () =
  let g = two_triangles_with_bridge () in
  let asg = assignment_of ~seed:59 g in
  (* a fill limit below what the 2-hop detour patch needs *)
  let model = Netcheck.model_of_assignment ~fill_limit:0.03 asg in
  let findings = Netcheck.check_recovery model in
  Alcotest.(check bool) "rewrite patches flagged over the limit" true
    (has_check "recovery-fill" findings)

(* ---- Net.verify and the LIPSIN_NETCHECK gate ---- *)

let test_net_verify () =
  let g = tree_graph ~seed:61 ~nodes:12 in
  let asg = assignment_of ~seed:61 g in
  let net = Net.make asg in
  let findings = Net.verify ~samples:4 net in
  Alcotest.(check int) "tree deployment verifies error-free" 0
    (List.length (Netcheck.errors findings));
  (* failing a link shows up through the engine snapshot *)
  let l = List.hd (Graph.out_links g 0) in
  Net.fail_link net l;
  let model = Netcheck.model_of_engines (Net.assignment net) ~engine_of:(Net.engine net) in
  let tree = [ l ] in
  let c = Candidate.build_one asg ~tree ~table:0 in
  let after =
    Netcheck.check_zfilter model ~table:0 ~zfilter:c.Candidate.zfilter ~src:0
      ~tree
  in
  Alcotest.(check bool) "failed link yields under-delivery" true
    (has_check "under-delivery" after)

let with_env var value f =
  Unix.putenv var value;
  Fun.protect ~finally:(fun () -> Unix.putenv var "") f

let test_netcheck_gate () =
  (* Clean deployment passes under the gate... *)
  let g = tree_graph ~seed:67 ~nodes:8 in
  let asg = assignment_of ~seed:67 g in
  with_env "LIPSIN_NETCHECK" "1" (fun () ->
      let net = Net.make asg in
      ignore (Net.engine net 0);
      (* ...a deployment with colliding sibling identities is refused. *)
      let bad_g = Graph.create ~nodes:3 in
      Graph.add_edge bad_g 0 1;
      Graph.add_edge bad_g 0 2;
      let base = Assignment.make default_params (Rng.of_int 71) bad_g in
      let nonces = Assignment.nonces base in
      nonces.((find_link bad_g 0 2).Graph.index) <-
        nonces.((find_link bad_g 0 1).Graph.index);
      let bad = Assignment.make_with_nonces default_params nonces bad_g in
      match Net.make bad with
      | exception Invalid_argument msg ->
        Alcotest.(check bool) "names the failed check" true
          (let re = "lit-collision" in
           let len = String.length re in
           let rec contains i =
             i + len <= String.length msg
             && (String.equal (String.sub msg i len) re || contains (i + 1))
           in
           contains 0)
      | _ -> Alcotest.fail "gate must refuse a colliding deployment")

(* when the gate is off, the same deployment builds fine *)
let test_gate_off_is_permissive () =
  let g = Graph.create ~nodes:3 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 0 2;
  let base = Assignment.make default_params (Rng.of_int 73) g in
  let nonces = Assignment.nonces base in
  nonces.(2) <- nonces.(0);
  let bad = Assignment.make_with_nonces default_params nonces g in
  ignore (Net.make bad)

(* ---- persisted-deployment reporting (the CLI path) ---- *)

let test_lint_finding_adapter () =
  let g = Generator.ring ~nodes:4 in
  let asg = assignment_of ~seed:79 g in
  let model = Netcheck.model_of_assignment asg in
  let findings = Netcheck.check_deployment model in
  Alcotest.(check bool) "ring deployment yields findings" true (findings <> []);
  let reported =
    List.map (Netcheck.to_lint_finding ~deployment:"ring.assignment") findings
  in
  List.iter
    (fun f ->
      Alcotest.(check string) "anchored to the deployment file"
        "ring.assignment" f.Lipsin_linter.Finding.file)
    reported;
  (* both reporters accept them *)
  Alcotest.(check bool) "human report non-empty" true
    (String.length (Lipsin_linter.Finding.report_human reported) > 0);
  Alcotest.(check bool) "json report non-empty" true
    (String.length (Lipsin_linter.Finding.report_json reported) > 0)

(* ---- mutation properties (mirror test_analysis's audit props) ---- *)

let prop_clean_trees_verify =
  QCheck.Test.make ~name:"netcheck: clean random trees report zero loops"
    ~count:120
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Rng.of_int seed in
      let nodes = 4 + Rng.int rng 17 in
      let g = tree_graph ~seed:(seed + 1) ~nodes in
      let asg = assignment_of ~seed:(seed + 2) g in
      let model = Netcheck.model_of_assignment asg in
      let src = Rng.int rng nodes in
      let n_subs = 1 + Rng.int rng (min 6 (nodes - 1)) in
      let subscribers =
        Array.to_list (Rng.sample rng n_subs nodes)
        |> List.filter (fun v -> v <> src)
      in
      let tree = Spt.delivery_tree g ~root:src ~subscribers in
      let findings = Netcheck.check_tree model ~src ~tree in
      (* on a tree topology the only directed cycles use the reverse of
         a tree edge, which a zFilter built from one-directed tree links
         can admit only through a Bloom false positive — so any loop
         finding must come with the false-delivery that closes it, and
         genuine errors (under-delivery, fill-limit, bad-table) never
         occur *)
      let non_loop_errors =
        List.filter
          (fun f -> not (String.equal f.Netcheck.check "loop"))
          (Netcheck.errors findings)
      in
      ((not (has_check "loop" findings)) || has_check "false-delivery" findings)
      && non_loop_errors = [])

let prop_injected_cycles_flagged =
  QCheck.Test.make
    ~name:"netcheck: injected self-admitting cycles are always flagged"
    ~count:120
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Rng.of_int seed in
      let nodes = 4 + Rng.int rng 9 in
      let g = Graph.create ~nodes in
      for i = 0 to nodes - 1 do
        Graph.add_edge g i ((i + 1) mod nodes)
      done;
      (* random chords *)
      let chords = Rng.int rng 3 in
      for _ = 1 to chords do
        let u = Rng.int rng nodes and v = Rng.int rng nodes in
        if u <> v && not (Graph.has_edge g u v) then Graph.add_edge g u v
      done;
      let asg = assignment_of ~seed:(seed + 3) g in
      let model = Netcheck.model_of_assignment asg in
      let table = Rng.int rng default_params.Lit.d in
      let src = Rng.int rng nodes in
      let sub = (src + 1 + Rng.int rng (nodes - 1)) mod nodes in
      let tree = Spt.delivery_tree g ~root:src ~subscribers:[ sub ] in
      let ring =
        List.init nodes (fun i ->
            match Graph.find_link g ~src:i ~dst:((i + 1) mod nodes) with
            | Some l -> l
            | None -> assert false)
      in
      let z =
        Zfilter.of_tags ~m:default_params.Lit.m
          (List.map (fun l -> Assignment.tag asg l ~table) (tree @ ring))
      in
      let findings = Netcheck.check_zfilter model ~table ~zfilter:z ~src ~tree in
      let loops =
        List.filter (fun f -> String.equal f.Netcheck.check "loop") findings
      in
      (* the injected ring must be flagged, and every reported cycle
         must be genuine: closed, and admitted by the filter *)
      loops <> []
      && List.for_all
           (fun f ->
             let links =
               List.map (fun i -> Graph.link g i) f.Netcheck.links
             in
             match links with
             | [] -> false
             | first :: _ ->
               let rec closed = function
                 | [ last ] -> last.Graph.dst = first.Graph.src
                 | a :: (b :: _ as rest) ->
                   a.Graph.dst = b.Graph.src && closed rest
                 | [] -> false
               in
               closed links
               && List.for_all
                    (fun l ->
                      Bitvec.subset
                        (Assignment.tag asg l ~table)
                        ~of_:(Zfilter.to_bitvec z))
                    links)
           loops)

let prop_persisted_roundtrip_verifies_identically =
  QCheck.Test.make
    ~name:"netcheck: persisted deployments verify like the originals" ~count:40
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Rng.of_int seed in
      let nodes = 5 + Rng.int rng 12 in
      let g =
        Generator.pref_attach
          ~rng:(Rng.of_int (seed + 1))
          ~nodes
          ~edges:(nodes - 1 + Rng.int rng 5)
          ~max_degree:6 ()
      in
      let asg = assignment_of ~seed:(seed + 2) g in
      match Persist.of_string g (Persist.to_string asg) with
      | Error _ -> false
      | Ok back ->
        let report m =
          List.map Netcheck.to_string (Netcheck.check_deployment m)
        in
        List.equal String.equal
          (report (Netcheck.model_of_assignment asg))
          (report (Netcheck.model_of_assignment back)))

let () =
  Alcotest.run "netcheck"
    [
      ( "zfilter",
        [
          Alcotest.test_case "clean tree" `Quick test_clean_tree_no_findings;
          Alcotest.test_case "injected ring cycle" `Quick
            test_injected_ring_cycle_flagged;
          Alcotest.test_case "chorded ring catchable" `Quick
            test_chorded_ring_cycle_catchable;
          Alcotest.test_case "ping-pong matches engine" `Quick
            test_ping_pong_matches_engine;
          Alcotest.test_case "fill limit" `Quick test_fill_limit_violation;
          Alcotest.test_case "false-delivery attribution" `Quick
            test_false_delivery_attribution;
          Alcotest.test_case "under-delivery" `Quick
            test_under_delivery_on_failed_link;
        ] );
      ( "lits",
        [
          Alcotest.test_case "duplicate nonce" `Quick
            test_duplicate_nonce_collision;
          Alcotest.test_case "union cover" `Quick
            test_lit_union_cover_detected;
          Alcotest.test_case "virtual shadow" `Quick
            test_virtual_shadow_detected;
        ] );
      ( "deployment",
        [
          Alcotest.test_case "loop severity vs prevention" `Quick
            test_deployment_loops_prevention_severity;
          Alcotest.test_case "recovery bridge + soundness" `Quick
            test_recovery_bridge_and_soundness;
          Alcotest.test_case "recovery fill headroom" `Quick
            test_recovery_fill_headroom;
          Alcotest.test_case "lint finding adapter" `Quick
            test_lint_finding_adapter;
        ] );
      ( "net",
        [
          Alcotest.test_case "verify" `Quick test_net_verify;
          Alcotest.test_case "LIPSIN_NETCHECK gate" `Quick test_netcheck_gate;
          Alcotest.test_case "gate off permissive" `Quick
            test_gate_off_is_permissive;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_clean_trees_verify;
          QCheck_alcotest.to_alcotest prop_injected_cycles_flagged;
          QCheck_alcotest.to_alcotest prop_persisted_roundtrip_verifies_identically;
        ] );
    ]
