(* Tests for Lipsin_linter.Racecheck — the Domain.spawn shared-state
   classifier behind `lipsin_lint --races`.

   Fixtures are typed in memory with Typed.type_impl, seeding the
   violations the pass must flag (unsynchronized shared ref counter,
   Array.set on a captured array from two domains, writes reached
   through a call chain with parameter re-rooting) and the sanctioned
   shapes it must pass (domain-local state, Atomic, Mutex.protect,
   Domain.DLS).  The qcheck property pins the suppression contract
   for [@lipsin.allow_race]. *)

module Typed = Lipsin_linter.Typed
module Racecheck = Lipsin_linter.Racecheck
module Finding = Lipsin_linter.Finding

let counter = ref 0

let check text =
  incr counter;
  let name = Printf.sprintf "Racefix%d" !counter in
  let u = Typed.type_impl ~name text in
  Racecheck.run_units [ u ]

let messages findings =
  List.map (fun (f : Finding.t) -> f.Finding.message) findings

let has_finding ~substr findings =
  List.exists
    (fun m ->
      let n = String.length substr in
      let rec scan i =
        i + n <= String.length m
        && (String.equal (String.sub m i n) substr || scan (i + 1))
      in
      scan 0)
    (messages findings)

let test_shared_ref_counter () =
  let sites, findings =
    check
      "let c = ref 0\n\
       let d () = Domain.spawn (fun () -> incr c)\n"
  in
  Alcotest.(check int) "one spawn site" 1 sites;
  Alcotest.(check int) "one finding" 1 (List.length findings);
  Alcotest.(check bool) "witness names the counter" true
    (has_finding ~substr:"to c" findings)

let test_array_set_two_domains () =
  let sites, findings =
    check
      "let a = Array.make 4 0\n\
       let d () =\n\
      \  let t1 = Domain.spawn (fun () -> a.(0) <- 1) in\n\
      \  let t2 = Domain.spawn (fun () -> a.(1) <- 2) in\n\
      \  Domain.join t1;\n\
      \  Domain.join t2\n"
  in
  Alcotest.(check int) "two spawn sites" 2 sites;
  Alcotest.(check int) "both writes flagged" 2 (List.length findings);
  Alcotest.(check bool) "witness names the array" true
    (has_finding ~substr:"to a" findings)

let test_domain_local_clean () =
  let sites, findings =
    check
      "let d () =\n\
      \  Domain.spawn (fun () ->\n\
      \      let local = ref 0 in\n\
      \      let buf = Array.make 8 0 in\n\
      \      for i = 0 to 7 do\n\
      \        buf.(i) <- i;\n\
      \        local := !local + buf.(i)\n\
      \      done;\n\
      \      !local)\n"
  in
  Alcotest.(check int) "one spawn site" 1 sites;
  Alcotest.(check int) "domain-local state is clean" 0
    (List.length findings)

let test_atomic_clean () =
  let sites, findings =
    check
      "let hits = Atomic.make 0\n\
       let d () = Domain.spawn (fun () -> Atomic.incr hits)\n"
  in
  Alcotest.(check int) "one spawn site" 1 sites;
  Alcotest.(check int) "atomic writes are sanctioned" 0
    (List.length findings)

let test_mutex_guarded_clean () =
  let sites, findings =
    check
      "let mu = Mutex.create ()\n\
       let total = ref 0\n\
       let d () =\n\
      \  Domain.spawn (fun () -> Mutex.protect mu (fun () -> incr total))\n"
  in
  Alcotest.(check int) "one spawn site" 1 sites;
  Alcotest.(check int) "mutex-guarded writes are sanctioned" 0
    (List.length findings)

let test_dls_clean () =
  let sites, findings =
    check
      "let k = Domain.DLS.new_key (fun () -> 0)\n\
       let d () = Domain.spawn (fun () -> Domain.DLS.set k 1)\n"
  in
  Alcotest.(check int) "one spawn site" 1 sites;
  Alcotest.(check int) "DLS writes are sanctioned" 0 (List.length findings)

let test_callchain_capture () =
  let _sites, findings =
    check
      "let c = ref 0\n\
       let bump () = incr c\n\
       let d () = Domain.spawn (fun () -> bump ())\n"
  in
  Alcotest.(check int) "write behind a call is found" 1
    (List.length findings);
  Alcotest.(check bool) "chain names the callee" true
    (has_finding ~substr:"bump" findings)

let test_param_rerooting () =
  let _sites, findings =
    check
      "let set_slot arr i v = arr.(i) <- v\n\
       let jobs = Array.make 8 0\n\
       let d () = Domain.spawn (fun () -> set_slot jobs 0 1)\n"
  in
  Alcotest.(check int) "parameter write re-roots to the captured array" 1
    (List.length findings);
  Alcotest.(check bool) "root names the captured array" true
    (has_finding ~substr:"jobs" findings);
  (* the same helper fed a freshly built array stays domain-local *)
  let _sites, clean =
    check
      "let set_slot arr i v = arr.(i) <- v\n\
       let d () =\n\
      \  Domain.spawn (fun () -> set_slot (Array.make 8 0) 0 1)\n"
  in
  Alcotest.(check int) "fresh argument keeps the write local" 0
    (List.length clean)

let test_no_spawn_no_findings () =
  let sites, findings =
    check "let c = ref 0\nlet d () = incr c\n"
  in
  Alcotest.(check int) "no spawn sites" 0 sites;
  Alcotest.(check int) "single-domain writes are out of scope" 0
    (List.length findings)

let test_suppression () =
  let _sites, findings =
    check
      "let c = ref 0\n\
       let d () =\n\
      \  Domain.spawn (fun () ->\n\
      \      (incr c [@lipsin.allow_race \"test-only counter\"]))\n"
  in
  Alcotest.(check int) "allow_race suppresses the write" 0
    (List.length findings);
  let _sites, findings =
    check
      "let c = ref 0\n\
       let[@lipsin.allow_race \"documented benign race\"] bump () = incr c\n\
       let d () = Domain.spawn (fun () -> bump ())\n"
  in
  Alcotest.(check int) "binding-level allow_race suppresses the callee" 0
    (List.length findings)

(* Property: a [@lipsin.allow_race]-marked site never reports, whatever
   shared-write shape is seeded; the same fixture without the attribute
   always does. *)
let racy_writes =
  [| "incr shared"; "shared := !shared + 1"; "decr shared" |]

let prop_suppressed_never_reports =
  QCheck.Test.make ~name:"allow_race-marked sites never report" ~count:30
    QCheck.(pair (int_bound (Array.length racy_writes - 1)) small_nat)
    (fun (pick, salt) ->
      let reason = Printf.sprintf "seeded reason %d" salt in
      let w = racy_writes.(pick) in
      let suppressed =
        check
          (Printf.sprintf
             "let shared = ref 0\n\
              let d () =\n\
             \  Domain.spawn (fun () -> ((%s) [@lipsin.allow_race %S]))\n"
             w reason)
      in
      let bare =
        check
          (Printf.sprintf
             "let shared = ref 0\n\
              let d () = Domain.spawn (fun () -> %s)\n"
             w)
      in
      List.length (snd suppressed) = 0 && List.length (snd bare) > 0)

let () =
  Alcotest.run "racecheck"
    [
      ( "violations",
        [
          Alcotest.test_case "shared ref counter" `Quick
            test_shared_ref_counter;
          Alcotest.test_case "Array.set from two domains" `Quick
            test_array_set_two_domains;
          Alcotest.test_case "call-chain capture" `Quick
            test_callchain_capture;
          Alcotest.test_case "parameter re-rooting" `Quick
            test_param_rerooting;
        ] );
      ( "sanctioned",
        [
          Alcotest.test_case "domain-local state" `Quick
            test_domain_local_clean;
          Alcotest.test_case "atomics" `Quick test_atomic_clean;
          Alcotest.test_case "mutex-guarded" `Quick test_mutex_guarded_clean;
          Alcotest.test_case "domain-local storage" `Quick test_dls_clean;
          Alcotest.test_case "no spawn, no findings" `Quick
            test_no_spawn_no_findings;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "site and binding" `Quick test_suppression;
          QCheck_alcotest.to_alcotest prop_suppressed_never_reports;
        ] );
    ]
