(* The persistent forwarding service must be a pure performance
   transform: for any worker count, engine and steal interleaving, the
   delivery sets and counter totals must equal sequential Run.deliver
   bit-for-bit.  Plus the arena path (Run.deliver_into) against the
   allocating path on the same scratch, pool-reuse accounting, and
   partitioned (stitched) batches against sequential Stitched.deliver. *)

module Bitvec = Lipsin_bitvec.Bitvec
module Lit = Lipsin_bloom.Lit
module Zfilter = Lipsin_bloom.Zfilter
module Partition = Lipsin_bloom.Partition
module Graph = Lipsin_topology.Graph
module Generator = Lipsin_topology.Generator
module Spt = Lipsin_topology.Spt
module Assignment = Lipsin_core.Assignment
module Candidate = Lipsin_core.Candidate
module Adaptive = Lipsin_core.Adaptive
module Stagecut = Lipsin_core.Stagecut
module Net = Lipsin_sim.Net
module Run = Lipsin_sim.Run
module Arena = Lipsin_sim.Arena
module Service = Lipsin_sim.Service
module Stitched = Lipsin_sim.Stitched
module Scenario = Lipsin_workload.Scenario
module Obs = Lipsin_obs.Obs
module Rng = Lipsin_util.Rng

(* A job pool over a random topology: mixed fan-outs (a few huge trees
   so shard skew and steals actually happen) spread over all d tables. *)
let make_jobs seed ~nodes ~count =
  let rng = Rng.of_int seed in
  let extra = 1 + Rng.int rng nodes in
  let graph =
    Generator.pref_attach ~rng ~nodes ~edges:(nodes - 1 + extra)
      ~max_degree:10 ()
  in
  let d = Lit.default.Lit.d in
  let asg = Assignment.make Lit.default (Rng.split rng) graph in
  let jobs =
    Array.init count (fun i ->
        (* Every 8th job is a near-broadcast: the heavy tail that makes
           contiguous sharding skewed. *)
        let users =
          if i mod 8 = 0 then 2 + (nodes / 2) else 2 + Rng.int rng 6
        in
        let picks = Rng.sample rng users (Graph.node_count graph) in
        let tree =
          Spt.delivery_tree graph ~root:picks.(0)
            ~subscribers:(Array.to_list (Array.sub picks 1 (users - 1)))
        in
        let table = i mod d in
        let c = Candidate.build_one asg ~tree ~table in
        {
          Service.job_src = picks.(0);
          job_table = table;
          job_zfilter = c.Candidate.zfilter;
          job_tree = tree;
        })
  in
  (asg, jobs)

(* Sequential ground truth on a Net configured exactly like a service
   worker's (loop prevention off). *)
let sequential ~engine asg jobs =
  let net = Net.make ~loop_prevention:false asg in
  Array.map
    (fun j ->
      Run.deliver ~engine net ~src:j.Service.job_src ~table:j.Service.job_table
        ~zfilter:j.Service.job_zfilter ~tree:j.Service.job_tree)
    jobs

let sum f outcomes = Array.fold_left (fun acc o -> acc + f o) 0 outcomes

let reached_list (o : Run.outcome) =
  let acc = ref [] in
  Array.iteri (fun v r -> if r then acc := v :: !acc) o.Run.reached;
  List.rev !acc

(* --- totals: service == sequential, any worker count / engine --- *)

let check_totals name (st : Service.stats) outcomes =
  let check what got want =
    Alcotest.(check int) (Printf.sprintf "%s: %s" name what) want got
  in
  check "jobs" st.Service.st_jobs (Array.length outcomes);
  check "link traversals" st.Service.st_link_traversals
    (sum (fun o -> o.Run.link_traversals) outcomes);
  check "false positives" st.Service.st_false_positives
    (sum (fun o -> o.Run.false_positives) outcomes);
  check "membership tests" st.Service.st_membership_tests
    (sum (fun o -> o.Run.membership_tests) outcomes);
  check "fill drops" st.Service.st_fill_drops
    (sum (fun o -> o.Run.fill_drops) outcomes);
  check "loop drops" st.Service.st_loop_drops
    (sum (fun o -> o.Run.loop_drops) outcomes);
  check "local deliveries" st.Service.st_local_deliveries
    (sum (fun o -> o.Run.local_deliveries) outcomes);
  check "nodes reached" st.Service.st_nodes_reached
    (sum
       (fun o ->
         let n = ref 0 in
         Array.iter (fun r -> if r then incr n) o.Run.reached;
         !n)
       outcomes)

let test_totals_match_sequential () =
  let asg, jobs = make_jobs 11 ~nodes:60 ~count:96 in
  List.iter
    (fun engine ->
      let seq = sequential ~engine asg jobs in
      List.iter
        (fun workers ->
          let svc = Service.create ~workers ~engine asg in
          let st = Service.run svc jobs in
          Service.shutdown svc;
          check_totals
            (Printf.sprintf "%d workers" workers)
            st seq)
        [ 1; 2; 5 ])
    [ `Reference; `Fast; `Bitsliced ]

(* --- delivery sets: run_collect == sequential, bit-for-bit --- *)

let test_delivery_sets_match_sequential () =
  let asg, jobs = make_jobs 23 ~nodes:50 ~count:64 in
  List.iter
    (fun engine ->
      let seq = sequential ~engine asg jobs in
      let svc = Service.create ~workers:3 ~engine asg in
      let got = Array.make (Array.length jobs) None in
      let st =
        Service.run_collect svc jobs ~f:(fun i o -> got.(i) <- Some o)
      in
      Service.shutdown svc;
      Alcotest.(check int) "all jobs ran" (Array.length jobs)
        st.Service.st_jobs;
      Array.iteri
        (fun i o ->
          match got.(i) with
          | None -> Alcotest.failf "job %d never delivered" i
          | Some g ->
            Alcotest.(check (list int))
              (Printf.sprintf "job %d delivery set" i)
              (reached_list o) (reached_list g);
            Alcotest.(check int)
              (Printf.sprintf "job %d traversals" i)
              o.Run.link_traversals g.Run.link_traversals)
        seq)
    [ `Reference; `Fast; `Bitsliced ]

(* --- shard counts and steal order must not change totals --- *)

let test_worker_count_invariance () =
  let asg, jobs = make_jobs 37 ~nodes:70 ~count:120 in
  let strip (st : Service.stats) =
    ( st.Service.st_jobs,
      st.Service.st_link_traversals,
      st.Service.st_false_positives,
      st.Service.st_membership_tests,
      st.Service.st_fill_drops,
      st.Service.st_loop_drops,
      st.Service.st_local_deliveries,
      st.Service.st_nodes_reached )
  in
  let run workers =
    let svc = Service.create ~workers ~engine:`Fast asg in
    (* Two batches through the same pool: totals per batch must be
       identical — nothing leaks between batches. *)
    let a = Service.run svc jobs in
    let b = Service.run svc jobs in
    Service.shutdown svc;
    Alcotest.(check bool) "batch totals repeat" true (strip a = strip b);
    strip a
  in
  let one = run 1 in
  List.iter
    (fun w -> Alcotest.(check bool) "sharding invariant" true (run w = one))
    [ 2; 4; 7 ]

(* --- the pool is persistent: no respawn per batch --- *)

let test_pool_reuse () =
  Obs.Sink.set Obs.Sink.Memory;
  let asg, jobs = make_jobs 5 ~nodes:30 ~count:16 in
  let spawned = Obs.Counter.make "lipsin_service_workers_spawned_total" in
  let before = Obs.Counter.value spawned in
  let svc = Service.create ~workers:2 ~engine:`Fast asg in
  for _ = 1 to 10 do
    ignore (Service.run svc jobs)
  done;
  Service.shutdown svc;
  Alcotest.(check int) "workers spawned once, ever" 2
    (Obs.Counter.value spawned - before);
  Alcotest.check_raises "run after shutdown raises"
    (Invalid_argument "Service: the pool is shut down") (fun () ->
      ignore (Service.run svc jobs));
  (* Idempotent. *)
  Service.shutdown svc

(* --- arena path == allocating path on the same inputs --- *)

let test_deliver_into_matches_deliver () =
  let asg, jobs = make_jobs 53 ~nodes:60 ~count:48 in
  let net = Net.make ~loop_prevention:false asg in
  let arena = Arena.create net in
  List.iter
    (fun engine ->
      Arena.prepare arena engine;
      Array.iteri
        (fun i j ->
          let o =
            Run.deliver
              ~engine:(engine :> Run.engine)
              net ~src:j.Service.job_src ~table:j.Service.job_table
              ~zfilter:j.Service.job_zfilter ~tree:j.Service.job_tree
          in
          Run.deliver_into
            ~engine:(engine :> Run.engine)
            arena ~src:j.Service.job_src ~table:j.Service.job_table
            ~zfilter:j.Service.job_zfilter ~tree:j.Service.job_tree;
          let name what = Printf.sprintf "job %d: %s" i what in
          Alcotest.(check (array bool))
            (name "delivery set")
            o.Run.reached (Arena.reached_copy arena);
          Alcotest.(check int)
            (name "traversals")
            o.Run.link_traversals arena.Arena.link_traversals;
          Alcotest.(check int)
            (name "false positives")
            o.Run.false_positives arena.Arena.false_positives;
          Alcotest.(check int)
            (name "membership tests")
            o.Run.membership_tests arena.Arena.membership_tests;
          Alcotest.(check int)
            (name "fill drops")
            o.Run.fill_drops arena.Arena.fill_drops;
          Alcotest.(check int)
            (name "local deliveries")
            o.Run.local_deliveries arena.Arena.local_deliveries)
        jobs)
    [ `Fast; `Bitsliced; `Auto ]

(* --- partitioned batches == sequential Stitched.deliver --- *)

let test_partitioned_matches_sequential () =
  let g, hosts =
    Scenario.two_tier ~seed:77 ~core:60 ~core_edges:120 ~max_degree:16
      ~hosts:400 ()
  in
  let adaptive = Adaptive.make ~d:2 ~k:5 (Rng.of_int 78) g in
  let part =
    match
      Stagecut.plan adaptive ~rng:(Rng.of_int 79) ~root:0 ~subscribers:hosts
    with
    | Ok (part, _) -> part
    | Error e -> Alcotest.failf "Stagecut.plan: %s" e
  in
  let stitched = Stitched.make ~loop_prevention:false adaptive in
  Stitched.install stitched part;
  let seq = Stitched.deliver ~engine:`Fast stitched part in
  Stitched.uninstall stitched part;
  let parts = Array.make 6 part in
  let svc =
    Service.create ~workers:3 ~engine:`Fast ~adaptive
      (Adaptive.assignment adaptive ~m:(List.hd (Adaptive.widths adaptive)))
  in
  let got = Array.make (Array.length parts) None in
  let st =
    Service.run_partitioned svc parts ~f:(fun i o -> got.(i) <- Some o)
  in
  Service.shutdown svc;
  Alcotest.(check int) "all partitions ran" (Array.length parts)
    st.Service.st_jobs;
  Array.iteri
    (fun i o ->
      match o with
      | None -> Alcotest.failf "partition %d never delivered" i
      | Some (o : Stitched.outcome) ->
        Alcotest.(check (array int))
          (Printf.sprintf "partition %d delivered set" i)
          seq.Stitched.delivered o.Stitched.delivered;
        Alcotest.(check int)
          (Printf.sprintf "partition %d traversals" i)
          seq.Stitched.link_traversals o.Stitched.link_traversals;
        (match Stitched.exactly_once o part with
        | Ok () -> ()
        | Error e -> Alcotest.failf "partition %d: exactly-once: %s" i e))
    got

(* --- property: random scenarios, random worker counts --- *)

let prop_service_matches_sequential =
  QCheck.Test.make ~name:"service == sequential Run.deliver (any shards)"
    ~count:12
    QCheck.(pair (int_range 0 1000) (int_range 1 6))
    (fun (seed, workers) ->
      let asg, jobs = make_jobs seed ~nodes:40 ~count:40 in
      let seq = sequential ~engine:`Fast asg jobs in
      let svc = Service.create ~workers ~engine:`Fast asg in
      let st = Service.run svc jobs in
      Service.shutdown svc;
      st.Service.st_jobs = Array.length jobs
      && st.Service.st_link_traversals
         = sum (fun o -> o.Run.link_traversals) seq
      && st.Service.st_false_positives
         = sum (fun o -> o.Run.false_positives) seq
      && st.Service.st_membership_tests
         = sum (fun o -> o.Run.membership_tests) seq
      && st.Service.st_nodes_reached
         = sum
             (fun o ->
               let n = ref 0 in
               Array.iter (fun r -> if r then incr n) o.Run.reached;
               !n)
             seq)

let () =
  Alcotest.run "service"
    [
      ( "differential",
        [
          Alcotest.test_case "totals == sequential (engines x workers)" `Quick
            test_totals_match_sequential;
          Alcotest.test_case "delivery sets == sequential" `Quick
            test_delivery_sets_match_sequential;
          Alcotest.test_case "worker count invariance" `Quick
            test_worker_count_invariance;
          QCheck_alcotest.to_alcotest prop_service_matches_sequential;
        ] );
      ( "arena",
        [
          Alcotest.test_case "deliver_into == deliver" `Quick
            test_deliver_into_matches_deliver;
        ] );
      ( "lifecycle",
        [ Alcotest.test_case "pool reuse + shutdown" `Quick test_pool_reuse ] );
      ( "partitioned",
        [
          Alcotest.test_case "run_partitioned == Stitched.deliver" `Quick
            test_partitioned_matches_sequential;
        ] );
    ]
