(* Tests for Lipsin_reporting: the dependency-free JSON parser, the
   BENCH_*.json schema checker, and the markdown renderer the
   lipsin_report binary drives. *)

module Report = Lipsin_reporting.Report
module Json = Report.Json

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let parse_exn s =
  match Json.parse s with
  | Ok j -> j
  | Error e -> Alcotest.failf "parse %S: %s" s e

(* ---- JSON parser ---------------------------------------------------- *)

let test_json_values () =
  (match parse_exn {| {"a": [1, -2.5e1, true, null, "x\n\"y\\"], "b": {}} |} with
  | Json.Obj [ ("a", Json.Arr items); ("b", Json.Obj []) ] ->
    (match items with
    | [ Json.Num n1; Json.Num n2; Json.Bool true; Json.Null; Json.Str s ] ->
      Alcotest.(check (float 1e-9)) "int" 1.0 n1;
      Alcotest.(check (float 1e-9)) "float" (-25.0) n2;
      Alcotest.(check string) "escapes" "x\n\"y\\" s
    | _ -> Alcotest.fail "array shape")
  | _ -> Alcotest.fail "object shape");
  match parse_exn "\"A\\u00e9\"" with
  | Json.Str s -> Alcotest.(check string) "unicode escapes" "A\xc3\xa9" s
  | _ -> Alcotest.fail "unicode"

let test_json_errors () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "{\"a\":1,}"; "tru"; "\"unterminated";
      "1 2"; "{\"a\" 1}"; "nan" ]

let test_json_members () =
  let j = parse_exn {| {"x": 3, "s": "hi"} |} in
  Alcotest.(check (option (float 1e-9))) "member num" (Some 3.0)
    (Option.bind (Json.member "x" j) Json.to_float);
  Alcotest.(check (option string)) "member str" (Some "hi")
    (Option.bind (Json.member "s" j) Json.to_string_lit);
  Alcotest.(check bool) "missing member" true (Json.member "nope" j = None)

(* ---- schema checker ------------------------------------------------- *)

let pr9 =
  {| {"benchmark": "deliver", "sample_every": 1024, "noop_ns_per_op": 100.0,
      "overhead": [
        {"config": "counters", "ratio": 1.01, "ns_per_op": 101.0},
        {"config": "sampled-1-in-1024", "ratio": 1.02, "ns_per_op": 102.0}],
      "gate": "sampled ratio < 1.03"} |}

let test_check_bench () =
  Alcotest.(check (list string)) "clean PR9 file" []
    (Report.check_bench ~file:"BENCH_PR9.json" (parse_exn pr9));
  (match
     Report.check_bench ~file:"BENCH_PR9.json"
       (parse_exn {| {"benchmark": "x"} |})
   with
  | [] -> Alcotest.fail "missing overhead not flagged"
  | f :: _ ->
    Alcotest.(check bool) "names the field" true (contains f "overhead"));
  (match
     Report.check_bench ~file:"BENCH_PR7.json"
       (parse_exn {| {"entries": [{"name": "a", "x": 1}, {"name": "b"}],
                      "gate": "g"} |})
   with
  | [] -> Alcotest.fail "inconsistent table keys not flagged"
  | _ -> ());
  (match
     Report.check_bench ~file:"BENCH_PR5.json"
       (parse_exn {| {"sweep": [{"ports": 1e999}]} |})
   with
  | [] -> Alcotest.fail "non-finite number not flagged"
  | _ -> ());
  match
    Report.check_bench ~file:"BENCH_PR10.json"
      (parse_exn {| {"trajectory": [{"window": 1}]} |})
  with
  | [] -> Alcotest.fail "missing soak summary not flagged"
  | findings ->
    Alcotest.(check bool) "names the field" true
      (List.exists (fun f -> contains f "summary") findings)

(* ---- renderer ------------------------------------------------------- *)

let pr10 =
  {| {"benchmark": "soak-deliver-16-users-fast",
      "trajectory": [
        {"window": 1, "ops": 100, "ops_per_sec": 50000.0,
         "minor_words_per_op": 8.0, "p99_us": 40.0, "p999_us": 90.0}],
      "summary": {"measured_ops": 100, "ops_per_sec": 52000.0,
        "minor_words_per_op": 8.2, "speedup_vs_pr4": 2.1,
        "counters_match_sequential": true}} |}

let test_render () =
  let files =
    [
      ("bench/BENCH_PR9.json", parse_exn pr9);
      ("bench/BENCH_PR10.json", parse_exn pr10);
    ]
  in
  let md = Report.render ~obs_snapshot:"{\"scrape\":1}" files in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("report has " ^ needle) true (contains md needle))
    [
      "## BENCH_PR9.json";
      "| config |";
      "sampled-1-in-1024";
      "Observability overhead vs the no-op sink";
      "{\"scrape\":1}";
      "## BENCH_PR10.json";
      "The persistent service sustained 100 publications";
      "2.10x the spawn-per-batch PR4 baseline";
      "counters bit-for-bit sequential";
    ]

let () =
  Alcotest.run "report"
    [
      ( "json",
        [
          Alcotest.test_case "values and escapes" `Quick test_json_values;
          Alcotest.test_case "rejects malformed input" `Quick test_json_errors;
          Alcotest.test_case "member accessors" `Quick test_json_members;
        ] );
      ( "schema",
        [ Alcotest.test_case "check_bench findings" `Quick test_check_bench ] );
      ( "render",
        [ Alcotest.test_case "markdown shape" `Quick test_render ] );
    ]
