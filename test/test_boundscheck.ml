(* Tests for Lipsin_linter.Boundscheck — the typed-tree index-safety
   prover behind `lipsin_lint --bounds`.

   Fixtures are typed in memory with Typed.type_impl against the
   stdlib-only initial environment, seeded with the violations the
   checker must catch (off-by-one loop bounds, bad stride arithmetic,
   content-dependent indexes) and the idioms it must prove clean
   (length-bounded for/while loops, guard refinement, stride walks).
   The qcheck properties pin the suppression contract at binding
   granularity and the runtime half of the certificate: the checked and
   unchecked Idx modes agree bit for bit on every certified Bitvec
   kernel. *)

module Typed = Lipsin_linter.Typed
module Boundscheck = Lipsin_linter.Boundscheck
module Finding = Lipsin_linter.Finding
module Idx = Lipsin_bitvec.Idx
module Bitvec = Lipsin_bitvec.Bitvec
module Rng = Lipsin_util.Rng

let counter = ref 0

let check text =
  (* unique unit names: the compiler-libs persistent env caches typed
     units by module name *)
  incr counter;
  let name = Printf.sprintf "Boundsfix%d" !counter in
  let u = Typed.type_impl ~name text in
  let _stats, findings = Boundscheck.run_units [ u ] in
  findings

let stats_of text =
  incr counter;
  let name = Printf.sprintf "Boundsfix%d" !counter in
  let u = Typed.type_impl ~name text in
  let stats, _findings = Boundscheck.run_units [ u ] in
  stats

let messages findings =
  List.map (fun (f : Finding.t) -> f.Finding.message) findings

let has_finding ~substr findings =
  List.exists
    (fun m ->
      let n = String.length substr in
      let rec scan i =
        i + n <= String.length m
        && (String.equal (String.sub m i n) substr || scan (i + 1))
      in
      scan 0)
    (messages findings)

(* ---------------------------------------------------------------- *)
(* Clean fixtures: what the prover must discharge without help.      *)

let test_clean_length_loop () =
  let findings =
    check
      "let[@lipsin.inbounds] sum a =\n\
      \  let acc = ref 0 in\n\
      \  for i = 0 to Array.length a - 1 do\n\
      \    acc := !acc + Array.unsafe_get a i\n\
      \  done;\n\
      \  !acc\n"
  in
  Alcotest.(check int) "length-bounded for loop proves clean" 0
    (List.length findings)

let test_clean_while_counter () =
  let findings =
    check
      "let[@lipsin.inbounds] scan a =\n\
      \  let acc = ref 0 in\n\
      \  let i = ref 0 in\n\
      \  let n = Array.length a in\n\
      \  while !i < n do\n\
      \    acc := !acc lxor Array.unsafe_get a !i;\n\
      \    incr i\n\
      \  done;\n\
      \  !acc\n"
  in
  Alcotest.(check int) "monotone while counter proves clean" 0
    (List.length findings)

let test_clean_guard_refinement () =
  let findings =
    check
      "let[@lipsin.inbounds] get_guarded a i =\n\
      \  if i < 0 || i >= Array.length a then 0\n\
      \  else Array.unsafe_get a i\n"
  in
  Alcotest.(check int) "range guard refines the else branch" 0
    (List.length findings)

let test_clean_stride_walk () =
  let findings =
    check
      "let[@lipsin.inbounds] words b =\n\
      \  let n = Bytes.length b / 8 in\n\
      \  let acc = ref 0L in\n\
      \  for w = 0 to n - 1 do\n\
      \    acc := Int64.logxor !acc (Bytes.get_int64_le b (w * 8))\n\
      \  done;\n\
      \  !acc\n"
  in
  Alcotest.(check int) "8-byte stride walk proves clean" 0
    (List.length findings)

let test_clean_helper_via_inlining () =
  (* the helper has no annotation of its own: the obligation is
     discharged per call site, under the caller's facts *)
  let findings =
    check
      "let read a i = Array.unsafe_get a i\n\
       let[@lipsin.inbounds] total a =\n\
      \  let acc = ref 0 in\n\
      \  for i = 0 to Array.length a - 1 do\n\
      \    acc := !acc + read a i\n\
      \  done;\n\
      \  !acc\n"
  in
  Alcotest.(check int) "helper certified through its caller" 0
    (List.length findings)

(* ---------------------------------------------------------------- *)
(* Seeded violations: every corruption must be flagged statically.   *)

let test_off_by_one_loop () =
  let findings =
    check
      "let[@lipsin.inbounds] sum a =\n\
      \  let acc = ref 0 in\n\
      \  for i = 0 to Array.length a do\n\
      \    acc := !acc + Array.unsafe_get a i\n\
      \  done;\n\
      \  !acc\n"
  in
  Alcotest.(check bool) "inclusive length bound reported" true
    (has_finding ~substr:"unproven bounds" findings)

let test_bad_stride_arithmetic () =
  let findings =
    check
      "let[@lipsin.inbounds] words b =\n\
      \  let n = Bytes.length b / 8 in\n\
      \  let acc = ref 0L in\n\
      \  for w = 0 to n - 1 do\n\
      \    acc := Int64.logxor !acc (Bytes.get_int64_le b ((w * 8) + 1))\n\
      \  done;\n\
      \  !acc\n"
  in
  Alcotest.(check bool) "misaligned 8-byte read reported" true
    (has_finding ~substr:"unproven bounds" findings)

let test_dynamic_index () =
  let findings =
    check
      "let[@lipsin.inbounds] pick a idx i =\n\
      \  if i >= 0 && i < Array.length idx then\n\
      \    Array.unsafe_get a (Array.unsafe_get idx i)\n\
      \  else 0\n"
  in
  Alcotest.(check bool) "content-dependent index reported" true
    (has_finding ~substr:"unproven bounds" findings);
  (* only the outer read is unprovable: the guarded idx read is fine *)
  Alcotest.(check int) "exactly the outer read reported" 1
    (List.length findings)

let test_missing_lower_bound () =
  let findings =
    check
      "let[@lipsin.inbounds] last a i =\n\
      \  if i < Array.length a then Array.unsafe_get a i else 0\n"
  in
  Alcotest.(check bool) "missing nonnegativity reported" true
    (has_finding ~substr:"unproven bounds" findings)

let test_violation_through_helper () =
  let findings =
    check
      "let read a i = Array.unsafe_get a i\n\
       let[@lipsin.inbounds] total a =\n\
      \  let acc = ref 0 in\n\
      \  for i = 0 to Array.length a do\n\
      \    acc := !acc + read a i\n\
      \  done;\n\
      \  !acc\n"
  in
  Alcotest.(check bool) "violation reported through the inline chain" true
    (has_finding ~substr:"unproven bounds" findings);
  Alcotest.(check bool) "finding names the helper chain" true
    (has_finding ~substr:"read" findings)

(* ---------------------------------------------------------------- *)
(* Coverage and suppression policy.                                  *)

let test_uncertified_unsafe () =
  let findings = check "let f a i = Array.unsafe_get a i\n" in
  Alcotest.(check bool) "unreachable unsafe binding reported" true
    (has_finding ~substr:"uncertified unsafe access" findings)

let test_reasonless_suppression () =
  let findings =
    check
      "let[@lipsin.inbounds] f a =\n\
      \  (Array.unsafe_get a 0 [@lipsin.allow_unchecked])\n"
  in
  Alcotest.(check bool) "reasonless suppression reported" true
    (has_finding ~substr:"a reason string is required" findings)

let test_reasoned_suppression_counts () =
  let stats =
    stats_of
      "let[@lipsin.inbounds] f a i =\n\
      \  (Array.unsafe_get a i [@lipsin.allow_unchecked \"test fixture\"])\n"
  in
  Alcotest.(check int) "suppressed obligation counted" 1
    stats.Boundscheck.st_suppressed;
  Alcotest.(check int) "one root found" 1
    (List.length stats.Boundscheck.st_roots)

let test_binding_granular_suppression () =
  (* suppression is per binding: the marked twin is silent, the bare
     twin still reports *)
  let findings =
    check
      "let[@lipsin.allow_unchecked \"fixture: checked by caller\"] f a i =\n\
      \  Array.unsafe_get a i\n\
       let g a i = Array.unsafe_set a i 0\n"
  in
  Alcotest.(check int) "only the unmarked binding reports" 1
    (List.length findings);
  Alcotest.(check bool) "the finding is g's" true
    (has_finding ~substr:"g" findings)

(* Property: whatever unchecked accessor is seeded and whatever the
   reason string says, a reasoned suppression silences exactly its own
   binding and never its bare twin. *)
let unsafe_bodies =
  [|
    "Array.unsafe_get a i";
    "Array.unsafe_set a i 0; 0";
    "Char.code (String.unsafe_get \"abcd\" i)";
    "Char.code (Bytes.unsafe_get (Bytes.create 4) i)";
  |]

let prop_binding_granular =
  QCheck.Test.make ~name:"allow_unchecked is binding-granular" ~count:24
    QCheck.(pair (int_bound (Array.length unsafe_bodies - 1)) small_nat)
    (fun (pick, salt) ->
      let reason = Printf.sprintf "seeded reason %d" salt in
      let body = unsafe_bodies.(pick) in
      let text =
        Printf.sprintf
          "let[@lipsin.allow_unchecked %S] f (a : int array) i = %s\n\
           let g (a : int array) i = %s\n"
          reason body body
      in
      let findings = check text in
      (* exactly one finding, and it is not attributed to [f] *)
      List.length findings = 1 && has_finding ~substr:"g" findings)

(* ---------------------------------------------------------------- *)
(* Runtime half: checked and unchecked Idx agree bit for bit.        *)

let prop_modes_agree =
  QCheck.Test.make ~name:"checked and unchecked kernels agree" ~count:60
    QCheck.(pair (int_bound 1000) (int_bound 290))
    (fun (seed, extra) ->
      let was = Idx.is_checking () in
      let bits = 1 + extra in
      let rng = Rng.of_int (seed + (bits * 7919)) in
      let a = Bitvec.create bits and b = Bitvec.create bits in
      for _ = 0 to bits / 3 do
        Bitvec.set a (Rng.int rng bits);
        Bitvec.set b (Rng.int rng bits)
      done;
      let run () =
        let seen = ref [] in
        Bitvec.iter_set a (fun i -> seen := i :: !seen);
        let u = Bitvec.copy a in
        Bitvec.logor_into ~dst:u b;
        ( Bitvec.popcount a,
          Bitvec.popcount u,
          Bitvec.subset a ~of_:u,
          Bitvec.intersects a b,
          Bitvec.hash a,
          Bitvec.get a (bits - 1),
          !seen )
      in
      Idx.set_checking true;
      let safe = run () in
      Idx.set_checking false;
      let unsafe = run () in
      Idx.set_checking was;
      safe = unsafe)

let () =
  Alcotest.run "boundscheck"
    [
      ( "proofs",
        [
          Alcotest.test_case "length loop" `Quick test_clean_length_loop;
          Alcotest.test_case "while counter" `Quick test_clean_while_counter;
          Alcotest.test_case "guard refinement" `Quick
            test_clean_guard_refinement;
          Alcotest.test_case "stride walk" `Quick test_clean_stride_walk;
          Alcotest.test_case "helper via inlining" `Quick
            test_clean_helper_via_inlining;
        ] );
      ( "violations",
        [
          Alcotest.test_case "off-by-one loop" `Quick test_off_by_one_loop;
          Alcotest.test_case "bad stride" `Quick test_bad_stride_arithmetic;
          Alcotest.test_case "dynamic index" `Quick test_dynamic_index;
          Alcotest.test_case "missing lower bound" `Quick
            test_missing_lower_bound;
          Alcotest.test_case "violation through helper" `Quick
            test_violation_through_helper;
        ] );
      ( "policy",
        [
          Alcotest.test_case "uncertified unsafe" `Quick
            test_uncertified_unsafe;
          Alcotest.test_case "reasonless suppression" `Quick
            test_reasonless_suppression;
          Alcotest.test_case "reasoned suppression counts" `Quick
            test_reasoned_suppression_counts;
          Alcotest.test_case "binding granularity" `Quick
            test_binding_granular_suppression;
          QCheck_alcotest.to_alcotest prop_binding_granular;
        ] );
      ("differential", [ QCheck_alcotest.to_alcotest prop_modes_agree ]);
    ]
