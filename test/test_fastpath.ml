(* Differential tests: the compiled Fastpath engine must agree with the
   reference Node_engine decision-for-decision — forward set, local
   delivery, service matches, loop suspicion, drop reason and
   membership-test count — on random topologies, filters (including
   over-full and all-ones), bad table indexes and failed-link patterns.
   Plus determinism checks for the Domain-parallel batch front-end. *)

module Bitvec = Lipsin_bitvec.Bitvec
module Lit = Lipsin_bloom.Lit
module Zfilter = Lipsin_bloom.Zfilter
module Graph = Lipsin_topology.Graph
module Generator = Lipsin_topology.Generator
module Spt = Lipsin_topology.Spt
module As_presets = Lipsin_topology.As_presets
module Assignment = Lipsin_core.Assignment
module Candidate = Lipsin_core.Candidate
module Node_engine = Lipsin_forwarding.Node_engine
module Fastpath = Lipsin_forwarding.Fastpath
module Net = Lipsin_sim.Net
module Run = Lipsin_sim.Run
module Parallel = Lipsin_sim.Parallel
module Rng = Lipsin_util.Rng

let link_indexes v = List.map (fun l -> l.Graph.index) v

let same_verdict (a : Node_engine.verdict) (b : Node_engine.verdict) =
  link_indexes a.Node_engine.forward_on = link_indexes b.Node_engine.forward_on
  && a.Node_engine.deliver_local = b.Node_engine.deliver_local
  && a.Node_engine.services_matched = b.Node_engine.services_matched
  && a.Node_engine.loop_suspected = b.Node_engine.loop_suspected
  && a.Node_engine.drop = b.Node_engine.drop
  && a.Node_engine.false_positive_tests = b.Node_engine.false_positive_tests

let pp_verdict (v : Node_engine.verdict) =
  Printf.sprintf "{fwd=[%s]; local=%b; svc=[%s]; susp=%b; drop=%s; tests=%d}"
    (String.concat ";" (List.map string_of_int (link_indexes v.Node_engine.forward_on)))
    v.Node_engine.deliver_local
    (String.concat ";" v.Node_engine.services_matched)
    v.Node_engine.loop_suspected
    (match v.Node_engine.drop with
    | None -> "-"
    | Some Node_engine.Fill_limit_exceeded -> "fill"
    | Some Node_engine.Loop_detected -> "loop"
    | Some Node_engine.Bad_table -> "table")
    v.Node_engine.false_positive_tests

(* One random scenario: a topology, an engine with random failures,
   virtuals, blocks and services, its compilation, and a pool of
   zFilters biased towards the node's tables (so matches, loops and
   blocks actually fire). *)
type scenario = {
  sc_graph : Graph.t;
  sc_node : Graph.node;
  sc_d : int;
  sc_engine : Node_engine.t;
  sc_fast : Fastpath.t;
  sc_pool : (Zfilter.t * int) array;  (* filter, suggested table *)
}

let build_scenario seed ~nodes ~steps:_ =
  let rng = Rng.of_int seed in
  let extra = Rng.int rng (max 1 (nodes / 2)) in
  let graph =
    Generator.pref_attach ~rng ~nodes ~edges:(nodes - 1 + extra) ~max_degree:8 ()
  in
  let m = [| 61; 64; 120; 248 |].(Rng.int rng 4) in
  let d = 1 + Rng.int rng 4 in
  let k = 3 + Rng.int rng 3 in
  let params = Lit.constant_k ~m ~d ~k in
  let asg = Assignment.make params (Rng.split rng) graph in
  let node = Rng.int rng (Graph.node_count graph) in
  let fill_limit = [| 0.5; 0.7; 1.0 |].(Rng.int rng 3) in
  let loop_cache_capacity = [| 1; 2; 4; 64 |].(Rng.int rng 4) in
  let loop_cache_ttl = Rng.int rng 3 in
  let loop_prevention = Rng.int rng 10 < 9 in
  let engine =
    Node_engine.create ~fill_limit ~loop_cache_capacity ~loop_cache_ttl
      ~loop_prevention asg node
  in
  let out = Array.of_list (Graph.out_links graph node) in
  let extra_lits = ref [] in
  (* Failed-link patterns. *)
  Array.iter
    (fun l -> if Rng.float rng 1.0 < 0.25 then Node_engine.fail_link engine l)
    out;
  (* Virtual links over random subsets of the node's ports. *)
  for _ = 1 to Rng.int rng 3 do
    let vlit = Lit.fresh params (Rng.split rng) in
    let out_links =
      Array.to_list (Array.of_seq (Seq.filter (fun _ -> Rng.bool rng)
        (Array.to_seq out)))
    in
    Node_engine.install_virtual engine vlit ~out_links;
    extra_lits := vlit :: !extra_lits
  done;
  (* Negative Link IDs: full identities and single-table raw patterns. *)
  if Array.length out > 0 then
    for _ = 1 to Rng.int rng 3 do
      let victim = out.(Rng.int rng (Array.length out)) in
      if Rng.bool rng then begin
        let neg = Lit.fresh params (Rng.split rng) in
        Node_engine.install_block engine victim neg;
        extra_lits := neg :: !extra_lits
      end
      else begin
        let table = Rng.int rng d in
        let donor = Graph.link graph (Rng.int rng (Graph.link_count graph)) in
        Node_engine.install_block_pattern engine victim ~table
          (Assignment.tag asg donor ~table)
      end
    done;
  (* Service endpoints. *)
  for i = 1 to Rng.int rng 3 do
    let slit = Lit.fresh params (Rng.split rng) in
    Node_engine.install_service engine slit ~name:(Printf.sprintf "svc%d" i);
    extra_lits := slit :: !extra_lits
  done;
  let fast = Fastpath.compile engine in
  (* zFilter pool: tags of random links in a fixed table, spiced with
     the node's incoming LITs (loop bait), the local/virtual/service
     identities, noise bits, and the occasional all-ones filter. *)
  let pool =
    Array.init 3 (fun _ ->
        let table = Rng.int rng d in
        let z = Zfilter.create ~m in
        if Rng.int rng 10 = 0 then Bitvec.set_all (Zfilter.to_bitvec z)
        else begin
          for _ = 1 to 1 + Rng.int rng 5 do
            let l = Graph.link graph (Rng.int rng (Graph.link_count graph)) in
            Zfilter.add z (Assignment.tag asg l ~table)
          done;
          if Rng.int rng 3 = 0 && Array.length out > 0 then begin
            (* an incoming LIT of this node: makes loops suspicious *)
            let l = out.(Rng.int rng (Array.length out)) in
            Zfilter.add z
              (Assignment.tag asg (Graph.reverse_link graph l) ~table)
          end;
          if Rng.int rng 4 = 0 then
            Zfilter.add z (Lit.tag (Node_engine.local_lit engine) table);
          List.iter
            (fun lit ->
              if Rng.int rng 4 = 0 then Zfilter.add z (Lit.tag lit table))
            !extra_lits;
          for _ = 1 to Rng.int rng 4 do
            Bitvec.set (Zfilter.to_bitvec z) (Rng.int rng m)
          done
        end;
        (z, table))
  in
  { sc_graph = graph; sc_node = node; sc_d = d; sc_engine = engine;
    sc_fast = fast; sc_pool = pool }

(* Drive both engines through the same decision sequence and compare
   verdicts step by step. *)
let run_differential seed ~nodes ~steps =
  let sc = build_scenario seed ~nodes ~steps in
  let rng = Rng.of_int (seed lxor 0x5CA1AB1E) in
  let out = Array.of_list (Graph.out_links sc.sc_graph sc.sc_node) in
  let failure = ref None in
  for step = 1 to steps do
    if !failure = None then begin
      let z, suggested = sc.sc_pool.(Rng.int rng (Array.length sc.sc_pool)) in
      let table =
        match Rng.int rng 10 with
        | 0 -> -1
        | 1 -> sc.sc_d
        | _ -> suggested
      in
      let in_link =
        if Rng.int rng 10 < 3 || Array.length out = 0 then None
        else if Rng.int rng 10 < 7 then
          (* an actual incoming link of this node *)
          Some (Graph.reverse_link sc.sc_graph (out.(Rng.int rng (Array.length out))))
        else
          Some (Graph.link sc.sc_graph (Rng.int rng (Graph.link_count sc.sc_graph)))
      in
      if Rng.int rng 5 = 0 then begin
        Node_engine.tick sc.sc_engine;
        Fastpath.tick sc.sc_fast
      end;
      let reference =
        Node_engine.forward sc.sc_engine ~table ~zfilter:z ~in_link
      in
      let in_link_index =
        match in_link with None -> -1 | Some l -> l.Graph.index
      in
      let fast =
        Fastpath.verdict sc.sc_fast
          (Fastpath.decide sc.sc_fast ~table ~zfilter:z ~in_link_index)
      in
      if not (same_verdict reference fast) then
        failure :=
          Some
            (Printf.sprintf "step %d table %d: ref %s / fast %s" step table
               (pp_verdict reference) (pp_verdict fast))
    end
  done;
  !failure

let case_arb =
  QCheck.make
    ~print:(fun (seed, nodes, steps) ->
      Printf.sprintf "seed=%d nodes=%d steps=%d" seed nodes steps)
    QCheck.Gen.(triple (int_bound 1_000_000) (int_range 4 20) (int_range 4 12))

let prop_differential =
  QCheck.Test.make ~name:"fastpath agrees with reference engine" ~count:1000
    case_arb
    (fun (seed, nodes, steps) ->
      match run_differential seed ~nodes ~steps with
      | None -> true
      | Some msg -> QCheck.Test.fail_report msg)

let prop_batch_matches_reference =
  QCheck.Test.make ~name:"decide_batch agrees with sequential reference"
    ~count:200 case_arb
    (fun (seed, nodes, steps) ->
      let sc = build_scenario seed ~nodes ~steps in
      let rng = Rng.of_int (seed + 77) in
      let z0, table = sc.sc_pool.(0) in
      let out = Array.of_list (Graph.out_links sc.sc_graph sc.sc_node) in
      let inputs =
        Array.init (max 1 steps) (fun i ->
            let z, _ = sc.sc_pool.(i mod Array.length sc.sc_pool) in
            let in_idx =
              if Array.length out = 0 || Rng.bool rng then -1
              else
                (Graph.reverse_link sc.sc_graph
                   out.(Rng.int rng (Array.length out))).Graph.index
            in
            (z, in_idx))
      in
      let table = if table >= 0 && table < sc.sc_d then table else 0 in
      let fast_verdicts = ref [] in
      Fastpath.decide_batch sc.sc_fast ~table inputs ~f:(fun _ d ->
          fast_verdicts := Fastpath.verdict sc.sc_fast d :: !fast_verdicts);
      let fast_verdicts = List.rev !fast_verdicts in
      let reference_verdicts =
        Array.to_list
          (Array.map
             (fun (z, in_idx) ->
               let in_link =
                 if in_idx < 0 then None
                 else Some (Graph.link sc.sc_graph in_idx)
               in
               Node_engine.forward sc.sc_engine ~table ~zfilter:z ~in_link)
             inputs)
      in
      ignore z0;
      List.for_all2 same_verdict reference_verdicts fast_verdicts)

(* A deterministic end-to-end check on a paper topology: a real
   delivery through Run with both engines gives identical outcomes. *)
let test_delivery_agreement () =
  let graph = As_presets.as6461 () in
  let asg = Assignment.make Lit.default (Rng.of_int 42) graph in
  let rng = Rng.of_int 43 in
  let picks = Rng.sample rng 16 (Graph.node_count graph) in
  let tree =
    Spt.delivery_tree graph ~root:picks.(0)
      ~subscribers:(Array.to_list (Array.sub picks 1 15))
  in
  let c = Candidate.build_one asg ~tree ~table:0 in
  let run engine =
    let net = Net.make ~loop_prevention:false asg in
    Run.deliver ~engine net ~src:picks.(0) ~table:0
      ~zfilter:c.Candidate.zfilter ~tree
  in
  let a = run `Reference and b = run `Fast in
  Alcotest.(check (list int)) "same traversal"
    (link_indexes a.Run.traversed) (link_indexes b.Run.traversed);
  Alcotest.(check int) "same tests" a.Run.membership_tests b.Run.membership_tests;
  Alcotest.(check int) "same fp" a.Run.false_positives b.Run.false_positives;
  Alcotest.(check bool) "same reached" true (a.Run.reached = b.Run.reached)

let test_fastpath_sees_net_failures () =
  let graph = As_presets.as6461 () in
  let asg = Assignment.make Lit.default (Rng.of_int 7) graph in
  let net = Net.make ~loop_prevention:false asg in
  let rng = Rng.of_int 8 in
  let picks = Rng.sample rng 8 (Graph.node_count graph) in
  let tree =
    Spt.delivery_tree graph ~root:picks.(0)
      ~subscribers:(Array.to_list (Array.sub picks 1 7))
  in
  let c = Candidate.build_one asg ~tree ~table:0 in
  let first = List.hd tree in
  (* Warm the compilation, then fail the first tree link: Net must
     invalidate and recompile so the fast path stops using it. *)
  ignore (Net.fastpath net first.Graph.src);
  Net.fail_link net first;
  let o =
    Run.deliver ~engine:`Fast net ~src:picks.(0) ~table:0
      ~zfilter:c.Candidate.zfilter ~tree
  in
  Alcotest.(check bool) "failed link not traversed" false
    (List.exists (fun l -> l.Graph.index = first.Graph.index) o.Run.traversed)

(* --- Domain-parallel batch --- *)

let parallel_jobs () =
  let graph = Generator.pref_attach ~rng:(Rng.of_int 91) ~nodes:80 ~edges:130
      ~max_degree:10 () in
  let asg = Assignment.make Lit.default (Rng.of_int 92) graph in
  let rng = Rng.of_int 93 in
  let jobs =
    Array.init 40 (fun _ ->
        let users = 2 + Rng.int rng 8 in
        let picks = Rng.sample rng users (Graph.node_count graph) in
        let tree =
          Spt.delivery_tree graph ~root:picks.(0)
            ~subscribers:(Array.to_list (Array.sub picks 1 (users - 1)))
        in
        let c = Candidate.build_one asg ~tree ~table:0 in
        {
          Parallel.job_src = picks.(0);
          job_table = 0;
          job_zfilter = c.Candidate.zfilter;
          job_tree = tree;
        })
  in
  (asg, jobs)

let strip_domains s = { s with Parallel.domains_used = 0 }

let test_parallel_deterministic_across_domains () =
  let asg, jobs = parallel_jobs () in
  let one = Parallel.deliver_all ~domains:1 asg jobs in
  let three = Parallel.deliver_all ~domains:3 asg jobs in
  Alcotest.(check int) "all jobs ran" 40 one.Parallel.jobs;
  Alcotest.(check int) "three domains" 3 three.Parallel.domains_used;
  Alcotest.(check bool) "sharding does not change totals" true
    (strip_domains one = strip_domains three)

let test_parallel_engines_agree () =
  let asg, jobs = parallel_jobs () in
  let fast = Parallel.deliver_all ~domains:2 ~engine:`Fast asg jobs in
  let reference = Parallel.deliver_all ~domains:2 ~engine:`Reference asg jobs in
  Alcotest.(check bool) "fast = reference" true
    (strip_domains fast = strip_domains reference)

let () =
  Alcotest.run "fastpath"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_differential;
          QCheck_alcotest.to_alcotest prop_batch_matches_reference;
        ] );
      ( "integration",
        [
          Alcotest.test_case "delivery agreement" `Quick test_delivery_agreement;
          Alcotest.test_case "net invalidates on failure" `Quick
            test_fastpath_sees_net_failures;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "deterministic across domains" `Quick
            test_parallel_deterministic_across_domains;
          Alcotest.test_case "engines agree" `Quick test_parallel_engines_agree;
        ] );
    ]
