(* Tests for Lipsin_forwarding: Node_engine and Recovery. *)

module Bitvec = Lipsin_bitvec.Bitvec
module Lit = Lipsin_bloom.Lit
module Zfilter = Lipsin_bloom.Zfilter
module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module Assignment = Lipsin_core.Assignment
module Candidate = Lipsin_core.Candidate
module Node_engine = Lipsin_forwarding.Node_engine
module Recovery = Lipsin_forwarding.Recovery
module Netcheck = Lipsin_analysis.Netcheck
module Rng = Lipsin_util.Rng

(*    0 - 1 - 2
      |   |   |
      3 - 4 - 5    *)
let grid_graph () =
  let g = Graph.create ~nodes:6 in
  List.iter (fun (u, v) -> Graph.add_edge g u v)
    [ (0, 1); (1, 2); (0, 3); (1, 4); (2, 5); (3, 4); (4, 5) ];
  g

let setup ?(seed = 1) () =
  let g = grid_graph () in
  let asg = Assignment.make Lit.default (Rng.of_int seed) g in
  (g, asg)

let zfilter_for asg tree table =
  (Candidate.build_one asg ~tree ~table).Candidate.zfilter

let link g u v =
  match Graph.find_link g ~src:u ~dst:v with
  | Some l -> l
  | None -> Alcotest.fail (Printf.sprintf "missing link %d->%d" u v)

let test_forwards_on_matching_link () =
  let g, asg = setup () in
  let tree = Spt.delivery_tree g ~root:0 ~subscribers:[ 2 ] in
  let z = zfilter_for asg tree 0 in
  let engine = Node_engine.create asg 1 in
  let v = Node_engine.forward engine ~table:0 ~zfilter:z ~in_link:(Some (link g 0 1)) in
  Alcotest.(check bool) "no drop" true (v.Node_engine.drop = None);
  Alcotest.(check bool) "forwards towards 2" true
    (List.exists (fun l -> l.Graph.dst = 2) v.Node_engine.forward_on)

let test_empty_zfilter_forwards_nowhere () =
  let _, asg = setup () in
  let engine = Node_engine.create asg 4 in
  let z = Zfilter.create ~m:248 in
  let v = Node_engine.forward engine ~table:0 ~zfilter:z ~in_link:None in
  Alcotest.(check int) "no links" 0 (List.length v.Node_engine.forward_on)

let test_bad_table_dropped () =
  let _, asg = setup () in
  let engine = Node_engine.create asg 0 in
  let z = Zfilter.create ~m:248 in
  let v = Node_engine.forward engine ~table:9 ~zfilter:z ~in_link:None in
  Alcotest.(check bool) "bad table" true (v.Node_engine.drop = Some Node_engine.Bad_table)

let test_fill_limit_drop () =
  let _, asg = setup () in
  let engine = Node_engine.create ~fill_limit:0.5 asg 0 in
  let z = Zfilter.create ~m:248 in
  Bitvec.set_all (Zfilter.to_bitvec z);
  let v = Node_engine.forward engine ~table:0 ~zfilter:z ~in_link:None in
  Alcotest.(check bool) "contamination dropped" true
    (v.Node_engine.drop = Some Node_engine.Fill_limit_exceeded);
  Alcotest.(check int) "nothing forwarded" 0 (List.length v.Node_engine.forward_on)

let test_fail_and_restore_link () =
  let g, asg = setup () in
  let tree = Spt.delivery_tree g ~root:0 ~subscribers:[ 1 ] in
  let z = zfilter_for asg tree 0 in
  let engine = Node_engine.create asg 0 in
  let l01 = link g 0 1 in
  Node_engine.fail_link engine l01;
  let v = Node_engine.forward engine ~table:0 ~zfilter:z ~in_link:None in
  Alcotest.(check bool) "failed link not used" false
    (List.exists (fun l -> l.Graph.index = l01.Graph.index) v.Node_engine.forward_on);
  Node_engine.restore_link engine l01;
  let v2 = Node_engine.forward engine ~table:0 ~zfilter:z ~in_link:None in
  Alcotest.(check bool) "restored link used" true
    (List.exists (fun l -> l.Graph.index = l01.Graph.index) v2.Node_engine.forward_on)

let test_fail_link_rejects_foreign () =
  let g, asg = setup () in
  let engine = Node_engine.create asg 0 in
  Alcotest.check_raises "foreign link"
    (Invalid_argument "Node_engine: link is not an outgoing link of this node")
    (fun () -> Node_engine.fail_link engine (link g 4 5))

let test_virtual_link_matching () =
  let g, asg = setup () in
  let params = Assignment.params asg in
  let vlit = Lit.generate params ~nonce:0xBEEFL in
  let engine = Node_engine.create asg 1 in
  Node_engine.install_virtual engine vlit ~out_links:[ link g 1 4 ];
  Alcotest.(check int) "installed" 1 (Node_engine.virtual_count engine);
  let z = Zfilter.of_tags ~m:params.Lit.m [ Lit.tag vlit 0 ] in
  let v = Node_engine.forward engine ~table:0 ~zfilter:z ~in_link:None in
  Alcotest.(check bool) "virtual match forwards" true
    (List.exists (fun l -> l.Graph.dst = 4) v.Node_engine.forward_on);
  Node_engine.remove_virtual engine vlit;
  Alcotest.(check int) "removed" 0 (Node_engine.virtual_count engine);
  let v2 = Node_engine.forward engine ~table:0 ~zfilter:z ~in_link:None in
  Alcotest.(check int) "no forward after removal" 0
    (List.length v2.Node_engine.forward_on)

let test_virtual_respects_failed_physical () =
  let g, asg = setup () in
  let params = Assignment.params asg in
  let vlit = Lit.generate params ~nonce:0xCAFEL in
  let engine = Node_engine.create asg 1 in
  let l14 = link g 1 4 in
  Node_engine.install_virtual engine vlit ~out_links:[ l14 ];
  Node_engine.fail_link engine l14;
  let z = Zfilter.of_tags ~m:params.Lit.m [ Lit.tag vlit 0 ] in
  let v = Node_engine.forward engine ~table:0 ~zfilter:z ~in_link:None in
  Alcotest.(check int) "virtual over failed link suppressed" 0
    (List.length v.Node_engine.forward_on)

let test_negative_link_id_blocks () =
  let g, asg = setup () in
  let params = Assignment.params asg in
  let tree = Spt.delivery_tree g ~root:0 ~subscribers:[ 1 ] in
  let z = zfilter_for asg tree 0 in
  let engine = Node_engine.create asg 0 in
  let neg = Lit.generate params ~nonce:0xD00DL in
  Node_engine.install_block engine (link g 0 1) neg;
  let v = Node_engine.forward engine ~table:0 ~zfilter:z ~in_link:None in
  Alcotest.(check bool) "flows without neg tag" true (v.Node_engine.forward_on <> []);
  let z_blocked = Zfilter.copy z in
  Zfilter.add z_blocked (Lit.tag neg 0);
  let v2 = Node_engine.forward engine ~table:0 ~zfilter:z_blocked ~in_link:None in
  Alcotest.(check bool) "blocked with neg tag" false
    (List.exists (fun l -> l.Graph.dst = 1) v2.Node_engine.forward_on);
  Node_engine.clear_blocks engine (link g 0 1);
  let v3 = Node_engine.forward engine ~table:0 ~zfilter:z_blocked ~in_link:None in
  Alcotest.(check bool) "flows after clearing" true
    (List.exists (fun l -> l.Graph.dst = 1) v3.Node_engine.forward_on)

let test_service_endpoints () =
  let _, asg = setup () in
  let params = Assignment.params asg in
  let engine = Node_engine.create asg 2 in
  let cache_svc = Lit.generate params ~nonce:0x5E11L in
  let log_svc = Lit.generate params ~nonce:0x5E12L in
  Node_engine.install_service engine cache_svc ~name:"cache";
  Node_engine.install_service engine log_svc ~name:"logger";
  (* A filter naming one service reaches exactly that service. *)
  let z = Zfilter.of_tags ~m:params.Lit.m [ Lit.tag cache_svc 0 ] in
  let v = Node_engine.forward engine ~table:0 ~zfilter:z ~in_link:None in
  Alcotest.(check (list string)) "cache addressed" [ "cache" ]
    v.Node_engine.services_matched;
  (* Both services in one multicast filter. *)
  let both = Zfilter.of_tags ~m:params.Lit.m [ Lit.tag cache_svc 0; Lit.tag log_svc 0 ] in
  let v2 = Node_engine.forward engine ~table:0 ~zfilter:both ~in_link:None in
  Alcotest.(check (list string)) "both addressed" [ "cache"; "logger" ]
    (List.sort String.compare v2.Node_engine.services_matched);
  Node_engine.remove_service engine cache_svc;
  let v3 = Node_engine.forward engine ~table:0 ~zfilter:z ~in_link:None in
  Alcotest.(check (list string)) "removed" [] v3.Node_engine.services_matched

let test_slow_path_local_lit () =
  let _, asg = setup () in
  let params = Assignment.params asg in
  let engine = Node_engine.create asg 3 in
  let z = Zfilter.of_tags ~m:params.Lit.m [ Lit.tag (Node_engine.local_lit engine) 0 ] in
  let v = Node_engine.forward engine ~table:0 ~zfilter:z ~in_link:None in
  Alcotest.(check bool) "delivered to slow path" true v.Node_engine.deliver_local

let test_loop_detection () =
  let g, asg = setup () in
  let engine = Node_engine.create asg 1 in
  let params = Assignment.params asg in
  (* Incoming LIT of node 1's interface to 0 is the tag of 0->1. *)
  let incoming = Assignment.tag asg (link g 0 1) ~table:0 in
  let z = Zfilter.of_tags ~m:params.Lit.m [ incoming ] in
  let v1 = Node_engine.forward engine ~table:0 ~zfilter:z ~in_link:(Some (link g 4 1)) in
  Alcotest.(check bool) "first pass suspects loop" true v1.Node_engine.loop_suspected;
  Alcotest.(check bool) "first pass not dropped" true (v1.Node_engine.drop = None);
  let v2 = Node_engine.forward engine ~table:0 ~zfilter:z ~in_link:(Some (link g 2 1)) in
  Alcotest.(check bool) "second pass over another link dropped" true
    (v2.Node_engine.drop = Some Node_engine.Loop_detected)

let test_loop_same_interface_not_dropped () =
  let g, asg = setup () in
  let engine = Node_engine.create asg 1 in
  let params = Assignment.params asg in
  let incoming = Assignment.tag asg (link g 0 1) ~table:0 in
  let z = Zfilter.of_tags ~m:params.Lit.m [ incoming ] in
  ignore (Node_engine.forward engine ~table:0 ~zfilter:z ~in_link:(Some (link g 4 1)));
  let v = Node_engine.forward engine ~table:0 ~zfilter:z ~in_link:(Some (link g 4 1)) in
  Alcotest.(check bool) "same interface is not a loop" true (v.Node_engine.drop = None)

(* A zFilter containing one of node 1's incoming LITs is "risky", so a
   forward caches the (zFilter, arrival link) pair; mixing in a second
   distinct tag makes each filter's cache key unique. *)
let risky_zfilter g asg salt =
  let z =
    Zfilter.of_tags ~m:248
      [ Assignment.tag asg (link g 0 1) ~table:0;
        Assignment.tag asg salt ~table:0 ]
  in
  z

let test_loop_cache_capacity_eviction_order () =
  let g, asg = setup () in
  (* Capacity 2, effectively no TTL aging within the test. *)
  let engine =
    Node_engine.create ~loop_cache_capacity:2 ~loop_cache_ttl:1000 asg 1
  in
  let z1 = risky_zfilter g asg (link g 1 2)
  and z2 = risky_zfilter g asg (link g 2 1)
  and z3 = risky_zfilter g asg (link g 4 1) in
  let arrive z in_l = Node_engine.forward engine ~table:0 ~zfilter:z ~in_link:(Some in_l) in
  (* Fill the cache in order z1, z2; inserting z3 must evict z1 (FIFO). *)
  ignore (arrive z1 (link g 4 1));
  ignore (arrive z2 (link g 4 1));
  ignore (arrive z3 (link g 4 1));
  (* z1 was evicted: returning over another link is NOT a loop — and
     the re-arrival re-caches it, evicting the new FIFO head z2. *)
  let v1 = arrive z1 (link g 2 1) in
  Alcotest.(check bool) "evicted entry forgotten" true (v1.Node_engine.drop = None);
  (* z3 survived both evictions: it IS a loop (and detection does not
     touch the queue). *)
  let v3 = arrive z3 (link g 2 1) in
  Alcotest.(check bool) "youngest entry still cached" true
    (v3.Node_engine.drop = Some Node_engine.Loop_detected);
  (* z2 was the FIFO head when z1 re-inserted: forgotten. *)
  let v2 = arrive z2 (link g 0 1) in
  Alcotest.(check bool) "old head evicted by re-insert" true
    (v2.Node_engine.drop = None)

let test_loop_cache_ttl_expiry () =
  let g, asg = setup () in
  let z = risky_zfilter g asg (link g 1 2) in
  (* Within the TTL grace the pair is still a loop. *)
  let engine = Node_engine.create ~loop_cache_ttl:1 asg 1 in
  ignore (Node_engine.forward engine ~table:0 ~zfilter:z ~in_link:(Some (link g 4 1)));
  Node_engine.tick engine;
  let v = Node_engine.forward engine ~table:0 ~zfilter:z ~in_link:(Some (link g 2 1)) in
  Alcotest.(check bool) "within ttl: loop" true
    (v.Node_engine.drop = Some Node_engine.Loop_detected);
  (* Past the TTL the entry has expired: same history, one more tick. *)
  let engine2 = Node_engine.create ~loop_cache_ttl:1 asg 1 in
  ignore (Node_engine.forward engine2 ~table:0 ~zfilter:z ~in_link:(Some (link g 4 1)));
  Node_engine.tick engine2;
  Node_engine.tick engine2;
  let v2 = Node_engine.forward engine2 ~table:0 ~zfilter:z ~in_link:(Some (link g 2 1)) in
  Alcotest.(check bool) "past ttl: forgotten" true (v2.Node_engine.drop = None)

let test_loop_cache_same_link_rearrival () =
  let g, asg = setup () in
  let z = risky_zfilter g asg (link g 1 2) in
  let engine = Node_engine.create ~loop_cache_ttl:2 asg 1 in
  ignore (Node_engine.forward engine ~table:0 ~zfilter:z ~in_link:(Some (link g 4 1)));
  Node_engine.tick engine;
  (* The same (zFilter, in-link) pair re-arriving on the SAME link is
     re-routed traffic, not a loop — even while the entry is live. *)
  let v = Node_engine.forward engine ~table:0 ~zfilter:z ~in_link:(Some (link g 4 1)) in
  Alcotest.(check bool) "same link is not a loop" true (v.Node_engine.drop = None);
  Alcotest.(check bool) "still suspected (and re-cached)" true
    v.Node_engine.loop_suspected

let test_table_sizing_star () =
  let g = Graph.create ~nodes:129 in
  for spoke = 1 to 128 do
    Graph.add_edge g 0 spoke
  done;
  let asg = Assignment.make Lit.default (Rng.of_int 2) g in
  let engine = Node_engine.create asg 0 in
  Alcotest.(check int) "dense 256 Kbit" (256 * 1024)
    (Node_engine.forwarding_table_bits engine ~sparse:false);
  Alcotest.(check int) "sparse 48 Kbit" (48 * 1024)
    (Node_engine.forwarding_table_bits engine ~sparse:true)

let test_backup_path_avoids_failed_link () =
  let g, _ = setup () in
  let failed = link g 1 4 in
  match Recovery.backup_path g ~link:failed with
  | None -> Alcotest.fail "grid has a backup path"
  | Some path ->
    Alcotest.(check bool) "starts at src" true ((List.hd path).Graph.src = 1);
    let last = List.nth path (List.length path - 1) in
    Alcotest.(check bool) "ends at dst" true (last.Graph.dst = 4);
    List.iter
      (fun l ->
        Alcotest.(check bool) "avoids failed link" true
          (l.Graph.index <> failed.Graph.index))
      path

let test_backup_path_none_for_bridge () =
  let g = Graph.create ~nodes:3 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 2;
  let bridge = link g 0 1 in
  Alcotest.(check bool) "bridge has no backup" true
    (Recovery.backup_path g ~link:bridge = None)

let test_is_bridge_classification () =
  (* Every edge of a tree is a bridge and none of a ring's are; on the
     grid the predicate must agree with backup_path everywhere. *)
  let tree = Graph.create ~nodes:6 in
  List.iter
    (fun (u, v) -> Graph.add_edge tree u v)
    [ (0, 1); (1, 2); (1, 3); (3, 4); (3, 5) ];
  Graph.iter_links tree (fun l ->
      Alcotest.(check bool) "tree edges are bridges" true
        (Recovery.is_bridge tree ~link:l);
      Alcotest.(check bool) "bridge <=> no backup path" true
        (Option.is_none (Recovery.backup_path tree ~link:l)));
  let ring = Graph.create ~nodes:5 in
  for i = 0 to 4 do
    Graph.add_edge ring i ((i + 1) mod 5)
  done;
  Graph.iter_links ring (fun l ->
      Alcotest.(check bool) "ring edges are not bridges" false
        (Recovery.is_bridge ring ~link:l));
  let g, _ = setup () in
  Graph.iter_links g (fun l ->
      Alcotest.(check bool) "is_bridge agrees with backup_path"
        (Option.is_none (Recovery.backup_path g ~link:l))
        (Recovery.is_bridge g ~link:l))

let prop_vlid_activation_stays_green =
  (* Fail a random non-bridge link of a random ring (+ chord), activate
     VLId recovery, and ask Netcheck whether a packet addressed with the
     failed link's own LIT still delivers loop-free to the far endpoint
     in every table: the verifier's loop-freedom/delivery verdict on a
     recovered deployment must stay free of Error findings. *)
  QCheck.Test.make ~name:"vlid recovery keeps netcheck green" ~count:40
    QCheck.(pair (int_range 4 10) small_nat)
    (fun (nodes, salt) ->
      let g = Graph.create ~nodes in
      for i = 0 to nodes - 1 do
        Graph.add_edge g i ((i + 1) mod nodes)
      done;
      if nodes >= 5 then Graph.add_edge g 0 2;
      let asg = Assignment.make Lit.default (Rng.of_int (salt + (nodes * 131))) g in
      let failed = Graph.link g (salt mod Graph.link_count g) in
      if Recovery.is_bridge g ~link:failed then
        QCheck.Test.fail_report "ring links cannot be bridges";
      let engines = Hashtbl.create 8 in
      let engine_of n =
        match Hashtbl.find_opt engines n with
        | Some e -> e
        | None ->
          let e = Node_engine.create asg n in
          Hashtbl.replace engines n e;
          e
      in
      (match Recovery.vlid_activate asg ~engine_of ~failed with
      | Error e -> QCheck.Test.fail_report e
      | Ok () -> ());
      let model = Netcheck.model_of_engines asg ~engine_of in
      let params = Assignment.params asg in
      let ok = ref true in
      for table = 0 to params.Lit.d - 1 do
        let z =
          Zfilter.of_tags ~m:params.Lit.m [ Assignment.tag asg failed ~table ]
        in
        let findings =
          Netcheck.check_zfilter model ~table ~zfilter:z
            ~src:failed.Graph.src ~tree:[ failed ]
        in
        if Netcheck.errors findings <> [] then ok := false
      done;
      !ok)

let test_vlid_recovery_end_to_end () =
  let g, asg = setup () in
  let engines = Hashtbl.create 8 in
  let engine_of n =
    match Hashtbl.find_opt engines n with
    | Some e -> e
    | None ->
      let e = Node_engine.create asg n in
      Hashtbl.replace engines n e;
      e
  in
  let failed = link g 1 4 in
  (match Recovery.vlid_activate asg ~engine_of ~failed with
  | Error e -> Alcotest.fail e
  | Ok () -> ());
  let z = Zfilter.of_tags ~m:248 [ Assignment.tag asg failed ~table:0 ] in
  let v = Node_engine.forward (engine_of 1) ~table:0 ~zfilter:z ~in_link:None in
  Alcotest.(check bool) "rerouted, not dead" true (v.Node_engine.forward_on <> []);
  Alcotest.(check bool) "not over the failed link" true
    (List.for_all
       (fun l -> l.Graph.index <> failed.Graph.index)
       v.Node_engine.forward_on);
  Recovery.vlid_deactivate asg ~engine_of ~failed;
  let v2 = Node_engine.forward (engine_of 1) ~table:0 ~zfilter:z ~in_link:None in
  Alcotest.(check bool) "physical link back in use" true
    (List.exists (fun l -> l.Graph.index = failed.Graph.index) v2.Node_engine.forward_on)

let test_zfilter_patch_matches_backup_links () =
  let g, asg = setup () in
  let failed = link g 1 4 in
  match Recovery.backup_path g ~link:failed with
  | None -> Alcotest.fail "backup required"
  | Some backup ->
    let patch = Recovery.zfilter_patch asg ~table:0 ~backup in
    let z = Zfilter.create ~m:248 in
    let patched = Recovery.apply_patch z patch in
    List.iter
      (fun l ->
        Alcotest.(check bool) "backup link matches patched filter" true
          (Zfilter.matches patched ~lit:(Assignment.tag asg l ~table:0)))
      backup;
    Alcotest.(check int) "original filter untouched" 0 (Zfilter.popcount z)

let test_node_backup_pairs () =
  let g, _ = setup () in
  (* Node 1's neighbours in the grid are 0, 2, 4; all pairs survive
     without it (the grid stays connected). *)
  let pairs = Recovery.node_backup_paths g ~failed:1 in
  Alcotest.(check int) "3 neighbours -> 6 ordered pairs" 6 (List.length pairs);
  List.iter
    (fun (out_link, detour) ->
      Alcotest.(check int) "impersonated link leaves the dead node" 1
        out_link.Graph.src;
      List.iter
        (fun l ->
          Alcotest.(check bool) "detour avoids the node" true
            (l.Graph.src <> 1 && l.Graph.dst <> 1))
        detour)
    pairs

let test_node_failure_recovery_end_to_end () =
  let g, asg = setup () in
  let engines = Hashtbl.create 8 in
  let engine_of n =
    match Hashtbl.find_opt engines n with
    | Some e -> e
    | None ->
      let e = Node_engine.create asg n in
      Hashtbl.replace engines n e;
      e
  in
  (* A path 0 -> 1 -> 2 through the soon-dead node 1. *)
  let tree = [ link g 0 1; link g 1 2 ] in
  let z = zfilter_for asg tree 0 in
  (match Recovery.node_failure_activate asg ~engine_of ~failed:1 with
  | Error e -> Alcotest.fail e
  | Ok protected -> Alcotest.(check bool) "pairs protected" true (protected >= 6));
  (* Node 0 must now route around node 1 towards 2. *)
  let v = Node_engine.forward (engine_of 0) ~table:0 ~zfilter:z ~in_link:None in
  Alcotest.(check bool) "does not feed the dead node" true
    (List.for_all (fun l -> l.Graph.dst <> 1) v.Node_engine.forward_on);
  Alcotest.(check bool) "detours instead" true (v.Node_engine.forward_on <> []);
  (* Walk the packet to 2 (bounded steps). *)
  let reached2 = ref false in
  let rec walk node in_link steps =
    if steps > 0 && not !reached2 then begin
      let verdict = Node_engine.forward (engine_of node) ~table:0 ~zfilter:z ~in_link in
      List.iter
        (fun l ->
          if l.Graph.dst = 2 then reached2 := true
          else walk l.Graph.dst (Some l) (steps - 1))
        verdict.Node_engine.forward_on
    end
  in
  walk 0 None 6;
  Alcotest.(check bool) "payload reaches 2 around the dead node" true !reached2;
  Recovery.node_failure_deactivate asg ~engine_of ~failed:1;
  let v2 = Node_engine.forward (engine_of 0) ~table:0 ~zfilter:z ~in_link:None in
  Alcotest.(check bool) "direct link back after repair" true
    (List.exists (fun l -> l.Graph.dst = 1) v2.Node_engine.forward_on)

let () =
  Alcotest.run "forwarding"
    [
      ( "algorithm-1",
        [
          Alcotest.test_case "forwards on match" `Quick test_forwards_on_matching_link;
          Alcotest.test_case "empty filter" `Quick test_empty_zfilter_forwards_nowhere;
          Alcotest.test_case "bad table" `Quick test_bad_table_dropped;
          Alcotest.test_case "fill limit" `Quick test_fill_limit_drop;
        ] );
      ( "state",
        [
          Alcotest.test_case "fail/restore link" `Quick test_fail_and_restore_link;
          Alcotest.test_case "foreign link rejected" `Quick test_fail_link_rejects_foreign;
          Alcotest.test_case "virtual link" `Quick test_virtual_link_matching;
          Alcotest.test_case "virtual + failed physical" `Quick
            test_virtual_respects_failed_physical;
          Alcotest.test_case "negative link id" `Quick test_negative_link_id_blocks;
          Alcotest.test_case "service endpoints" `Quick test_service_endpoints;
          Alcotest.test_case "slow path" `Quick test_slow_path_local_lit;
          Alcotest.test_case "table sizing" `Quick test_table_sizing_star;
        ] );
      ( "loops",
        [
          Alcotest.test_case "loop detection" `Quick test_loop_detection;
          Alcotest.test_case "same interface ok" `Quick
            test_loop_same_interface_not_dropped;
          Alcotest.test_case "cache capacity eviction order" `Quick
            test_loop_cache_capacity_eviction_order;
          Alcotest.test_case "cache ttl expiry" `Quick test_loop_cache_ttl_expiry;
          Alcotest.test_case "same-link re-arrival ok" `Quick
            test_loop_cache_same_link_rearrival;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "backup path valid" `Quick test_backup_path_avoids_failed_link;
          Alcotest.test_case "bridge has none" `Quick test_backup_path_none_for_bridge;
          Alcotest.test_case "is_bridge classification" `Quick
            test_is_bridge_classification;
          Alcotest.test_case "vlid end to end" `Quick test_vlid_recovery_end_to_end;
          QCheck_alcotest.to_alcotest prop_vlid_activation_stays_green;
          Alcotest.test_case "zfilter patch" `Quick test_zfilter_patch_matches_backup_links;
          Alcotest.test_case "node backup pairs" `Quick test_node_backup_pairs;
          Alcotest.test_case "node failure e2e" `Quick
            test_node_failure_recovery_end_to_end;
        ] );
    ]
